//! Classifiers: the MultiClass artifact that relates g-tree nodes to study
//! schema domains (Section 3.4, Figure 5).
//!
//! A classifier is an ordered list of guarded rules `output ← condition`;
//! the first rule whose condition holds produces the classified value.
//! *Entity classifiers* target an entity instead of a domain and "must
//! refer to at least one node in the g-tree that represents a form" — they
//! decide which form instances become study entities.

use crate::annotate::Provenance;
use crate::lang::{parse_rule, ParseError};
use crate::study_schema::{SchemaError, StudySchema};
use guava_gtree::tree::{GTree, GTreeError};
use guava_relational::error::{RelError, RelResult};
use guava_relational::expr::Expr;
use guava_relational::schema::{Column, Schema};
use guava_relational::table::Row;
use guava_relational::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a classifier maps *into*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// A domain of a study-schema attribute.
    Domain {
        entity: String,
        attribute: String,
        domain: String,
    },
    /// A study-schema entity (entity classifiers).
    Entity { entity: String },
    /// A data-cleaning classifier (the Section 6 extension): its rules
    /// read `DISCARD <- condition`, and instances matching any condition
    /// are dropped before entity selection. "Analysts may also choose to
    /// discard data based on the needs of the particular study."
    Cleaner { entity: String },
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Domain {
                entity,
                attribute,
                domain,
            } => {
                write!(f, "{entity}.{attribute} : {domain}")
            }
            Target::Entity { entity } => write!(f, "{entity}"),
            Target::Cleaner { entity } => write!(f, "{entity} (cleaner)"),
        }
    }
}

/// The reserved output identifier of cleaning rules.
pub const DISCARD: &str = "DISCARD";

/// One guarded rule `output ← guard`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub output: Expr,
    pub guard: Expr,
}

impl Rule {
    pub fn new(output: Expr, guard: Expr) -> Rule {
        Rule { output, guard }
    }

    /// Parse from the surface syntax `output <- guard`.
    pub fn parse(src: &str) -> Result<Rule, ParseError> {
        let (output, guard) = parse_rule(src)?;
        Ok(Rule { output, guard })
    }
}

/// Errors raised while checking or evaluating classifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierError {
    Parse(ParseError),
    GTree(GTreeError),
    Schema(SchemaError),
    /// Referenced nodes span more than one form (or none).
    FormAmbiguity(String),
    /// Entity classifier output is not a form node identifier.
    BadEntityOutput(String),
    /// A rule's literal output falls outside the target domain.
    OutsideDomain {
        classifier: String,
        value: String,
        domain: String,
    },
    /// Contributor the classifier is written for doesn't match.
    WrongContributor {
        expected: String,
        got: String,
    },
    Eval(RelError),
    /// A classified value fell outside the target domain at run time.
    RuntimeDomainViolation {
        classifier: String,
        value: String,
    },
    Empty(String),
}

impl fmt::Display for ClassifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifierError::Parse(e) => write!(f, "{e}"),
            ClassifierError::GTree(e) => write!(f, "{e}"),
            ClassifierError::Schema(e) => write!(f, "{e}"),
            ClassifierError::FormAmbiguity(m) => write!(f, "form ambiguity: {m}"),
            ClassifierError::BadEntityOutput(m) => write!(f, "bad entity output: {m}"),
            ClassifierError::OutsideDomain {
                classifier,
                value,
                domain,
            } => {
                write!(
                    f,
                    "classifier `{classifier}` outputs {value} outside domain `{domain}`"
                )
            }
            ClassifierError::WrongContributor { expected, got } => {
                write!(f, "classifier written for `{expected}`, applied to `{got}`")
            }
            ClassifierError::Eval(e) => write!(f, "{e}"),
            ClassifierError::RuntimeDomainViolation { classifier, value } => {
                write!(
                    f,
                    "classifier `{classifier}` produced out-of-domain value {value}"
                )
            }
            ClassifierError::Empty(c) => write!(f, "classifier `{c}` has no rules"),
        }
    }
}

impl std::error::Error for ClassifierError {}

impl From<ParseError> for ClassifierError {
    fn from(e: ParseError) -> Self {
        ClassifierError::Parse(e)
    }
}

impl From<GTreeError> for ClassifierError {
    fn from(e: GTreeError) -> Self {
        ClassifierError::GTree(e)
    }
}

impl From<SchemaError> for ClassifierError {
    fn from(e: SchemaError) -> Self {
        ClassifierError::Schema(e)
    }
}

impl From<RelError> for ClassifierError {
    fn from(e: RelError) -> Self {
        ClassifierError::Eval(e)
    }
}

/// A classifier, as authored by an analyst: named, annotated, targeted, and
/// tied to one contributor's g-tree (its rules reference that tree's nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classifier {
    pub name: String,
    /// The contributor (tool) whose g-tree this classifier reads.
    pub contributor: String,
    /// Free-text rationale, e.g. "Classifies packs per day according to
    /// conversations with cancer study on 5/3/02" (Figure 5a).
    pub note: String,
    pub target: Target,
    pub rules: Vec<Rule>,
    pub provenance: Provenance,
}

impl Classifier {
    pub fn new(
        name: impl Into<String>,
        contributor: impl Into<String>,
        note: impl Into<String>,
        target: Target,
        rules: Vec<Rule>,
    ) -> Classifier {
        Classifier {
            name: name.into(),
            contributor: contributor.into(),
            note: note.into(),
            target,
            rules,
            provenance: Provenance::new(),
        }
    }

    /// Build from surface-syntax rule strings.
    pub fn parse_rules(
        name: impl Into<String>,
        contributor: impl Into<String>,
        note: impl Into<String>,
        target: Target,
        rule_srcs: &[&str],
    ) -> Result<Classifier, ClassifierError> {
        let rules = rule_srcs
            .iter()
            .map(|s| Rule::parse(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Classifier::new(name, contributor, note, target, rules))
    }

    /// All g-tree node names referenced by any rule, in first-seen order.
    pub fn referenced_nodes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for r in &self.rules {
            for c in r
                .output
                .referenced_columns()
                .into_iter()
                .chain(r.guard.referenced_columns())
            {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Bind the classifier against a g-tree and a study schema: resolve
    /// node references, determine the source form, type-check outputs
    /// against the target domain, and rewrite form-node references (which
    /// mean "the instance exists") to TRUE. Returns an executable
    /// [`BoundClassifier`].
    pub fn bind(
        &self,
        tree: &GTree,
        schema: &StudySchema,
    ) -> Result<BoundClassifier, ClassifierError> {
        if self.contributor != tree.tool {
            return Err(ClassifierError::WrongContributor {
                expected: self.contributor.clone(),
                got: tree.tool.clone(),
            });
        }
        if self.rules.is_empty() {
            return Err(ClassifierError::Empty(self.name.clone()));
        }
        // Partition references into attribute nodes and form nodes.
        let is_cleaner = matches!(self.target, Target::Cleaner { .. });
        let mut form: Option<String> = None;
        let mut attr_nodes: Vec<String> = Vec::new();
        let mut form_nodes: Vec<String> = Vec::new();
        for name in self.referenced_nodes() {
            if is_cleaner && name.eq_ignore_ascii_case(DISCARD) {
                continue; // the reserved cleaning token is not a node
            }
            let node = tree.node(name)?;
            if node.is_form() {
                form_nodes.push(name.to_owned());
                merge_form(&mut form, &node.name, &self.name)?;
            } else if node.is_attribute() {
                attr_nodes.push(name.to_owned());
                merge_form(&mut form, &node.source_form, &self.name)?;
            } else {
                return Err(ClassifierError::GTree(GTreeError::UnknownNode(format!(
                    "`{name}` is a decoration node and holds no data"
                ))));
            }
        }
        let form = form.ok_or_else(|| {
            ClassifierError::FormAmbiguity(format!(
                "classifier `{}` references no g-tree nodes",
                self.name
            ))
        })?;

        // Validate the target and, for domain targets, type-check literal
        // rule outputs against the domain.
        match &self.target {
            Target::Domain {
                entity,
                attribute,
                domain,
            } => {
                let d = schema.resolve(entity, attribute, domain)?;
                for r in &self.rules {
                    if let Expr::Lit(v) = &r.output {
                        if !d.spec.contains(v) {
                            return Err(ClassifierError::OutsideDomain {
                                classifier: self.name.clone(),
                                value: v.to_string(),
                                domain: domain.clone(),
                            });
                        }
                    }
                }
            }
            Target::Entity { entity } => {
                schema.entity(entity)?;
                // "The classifier must refer to at least one node in the
                // g-tree that represents a form", and its outputs must *be*
                // that form reference.
                if form_nodes.is_empty() {
                    return Err(ClassifierError::BadEntityOutput(format!(
                        "entity classifier `{}` references no form node",
                        self.name
                    )));
                }
                for r in &self.rules {
                    match &r.output {
                        Expr::Col(c) if *c == form => {}
                        other => {
                            return Err(ClassifierError::BadEntityOutput(format!(
                                "entity classifier `{}` must output the form node `{form}`, got {other}",
                                self.name
                            )))
                        }
                    }
                }
            }
            Target::Cleaner { entity } => {
                schema.entity(entity)?;
                // Every rule must read `DISCARD <- condition`.
                for r in &self.rules {
                    match &r.output {
                        Expr::Col(c) if c.eq_ignore_ascii_case(DISCARD) => {}
                        other => {
                            return Err(ClassifierError::BadEntityOutput(format!(
                                "cleaning classifier `{}` must output DISCARD, got {other}",
                                self.name
                            )))
                        }
                    }
                }
            }
        }

        // Rewrite form-node references to TRUE: when the classifier runs
        // over an instance's row, the instance exists by construction.
        let rewrite = |e: &Expr| -> Expr {
            substitute_columns(e, &|c| {
                if c == form {
                    Some(Expr::lit(true))
                } else {
                    None
                }
            })
        };
        let rules: Vec<Rule> = self
            .rules
            .iter()
            .map(|r| Rule {
                output: rewrite(&r.output),
                guard: rewrite(&r.guard),
            })
            .collect();

        // The evaluation schema: the form's attribute nodes, typed from the
        // g-tree. Rows handed to `classify` must carry these columns.
        let form_node = tree.node(&form)?;
        let mut columns = Vec::new();
        for n in tree.attributes() {
            if n.source_form == form_node.name {
                columns.push(Column::new(
                    n.name.clone(),
                    n.data_type.expect("attribute nodes are typed"),
                ));
            }
        }
        let eval_schema = Schema::new(form.clone(), columns).map_err(ClassifierError::Eval)?;

        Ok(BoundClassifier {
            name: self.name.clone(),
            contributor: self.contributor.clone(),
            target: self.target.clone(),
            form,
            attr_nodes,
            rules,
            eval_schema,
        })
    }
}

fn merge_form(
    form: &mut Option<String>,
    candidate: &str,
    classifier: &str,
) -> Result<(), ClassifierError> {
    match form {
        None => {
            *form = Some(candidate.to_owned());
            Ok(())
        }
        Some(f) if f == candidate => Ok(()),
        Some(f) => Err(ClassifierError::FormAmbiguity(format!(
            "classifier `{classifier}` references nodes from both `{f}` and `{candidate}`"
        ))),
    }
}

/// Substitute column references by expressions (partial).
fn substitute_columns(e: &Expr, f: &impl Fn(&str) -> Option<Expr>) -> Expr {
    match e {
        Expr::Col(c) => f(c).unwrap_or_else(|| Expr::Col(c.clone())),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute_columns(a, f)),
            Box::new(substitute_columns(b, f)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(substitute_columns(x, f))),
        Expr::Neg(x) => Expr::Neg(Box::new(substitute_columns(x, f))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(substitute_columns(x, f))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(substitute_columns(x, f))),
        Expr::InList(x, vs) => Expr::InList(Box::new(substitute_columns(x, f)), vs.clone()),
        Expr::Coalesce(es) => Expr::Coalesce(es.iter().map(|x| substitute_columns(x, f)).collect()),
        Expr::Case { arms, default } => Expr::Case {
            arms: arms
                .iter()
                .map(|(c, v)| (substitute_columns(c, f), substitute_columns(v, f)))
                .collect(),
            default: Box::new(substitute_columns(default, f)),
        },
    }
}

/// A classifier bound to a g-tree and study schema: executable over naïve
/// rows of its source form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundClassifier {
    pub name: String,
    pub contributor: String,
    pub target: Target,
    /// The form whose instances this classifier reads.
    pub form: String,
    /// Attribute nodes actually referenced (the classifier's data needs).
    pub attr_nodes: Vec<String>,
    /// Rules with form references resolved.
    pub rules: Vec<Rule>,
    /// Schema of the rows handed to [`BoundClassifier::classify`]: one
    /// column per attribute node of the form, in g-tree order.
    pub eval_schema: Schema,
}

impl BoundClassifier {
    /// Classify one instance row (columns per `eval_schema`). Returns the
    /// first matching rule's output; NULL when no rule matches — an
    /// unclassifiable instance.
    pub fn classify(&self, row: &Row) -> RelResult<Value> {
        for rule in &self.rules {
            if rule.guard.matches(&self.eval_schema, row)? {
                return rule.output.eval(&self.eval_schema, row);
            }
        }
        Ok(Value::Null)
    }

    /// The disjunction of all rule guards — "any rule matches". This is
    /// the selection predicate of entity classifiers and the discard
    /// predicate of cleaning classifiers.
    pub fn guard_expr(&self) -> Expr {
        self.rules
            .iter()
            .map(|r| r.guard.clone())
            .reduce(Expr::or)
            .expect("bound classifiers have at least one rule")
    }

    /// For entity classifiers: should this instance become a study entity?
    /// For cleaning classifiers: should this instance be discarded?
    pub fn selects(&self, row: &Row) -> RelResult<bool> {
        for rule in &self.rules {
            if rule.guard.matches(&self.eval_schema, row)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Project a naïve form row (which includes `instance_id` first) down to
    /// this classifier's evaluation row.
    pub fn eval_row_from(&self, naive_schema: &Schema, naive_row: &Row) -> RelResult<Row> {
        self.eval_schema
            .columns()
            .iter()
            .map(|c| {
                let idx =
                    naive_schema
                        .index_of(&c.name)
                        .ok_or_else(|| RelError::UnknownColumn {
                            table: naive_schema.name.clone(),
                            column: c.name.clone(),
                        })?;
                Ok(naive_row[idx].clone())
            })
            .collect()
    }

    /// Compile the rule list into a single CASE expression over the
    /// evaluation schema — the form MultiClass uses when generating ETL
    /// (each rule becomes a conditional, Section 4.2).
    pub fn as_case_expr(&self) -> Expr {
        Expr::Case {
            arms: self
                .rules
                .iter()
                .map(|r| (r.guard.clone(), r.output.clone()))
                .collect(),
            default: Box::new(Expr::Lit(Value::Null)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::study_schema::{AttributeDef, EntityDef};
    use guava_forms::control::{ChoiceOption, Control};
    use guava_forms::form::{FormDef, ReportingTool};
    use guava_relational::value::DataType;

    fn tree() -> GTree {
        GTree::derive(&ReportingTool::new(
            "cori",
            "1.0",
            vec![FormDef::new(
                "Procedure",
                "Procedure",
                vec![
                    Control::numeric("PacksPerDay", "Packs per day", DataType::Int),
                    Control::check_box("SurgeryPerformed", "Surgery performed?"),
                    Control::drop_down(
                        "Alcohol",
                        "Alcohol use",
                        vec![
                            ChoiceOption::new("None", 0i64),
                            ChoiceOption::new("Heavy", 2i64),
                        ],
                    ),
                ],
            )],
        ))
        .unwrap()
    }

    fn schema() -> StudySchema {
        let root = EntityDef::new("Procedure").with_attribute(AttributeDef::new(
            "Smoking",
            vec![Domain::categorical(
                "class",
                "None, Light, Moderate, Heavy",
                &["None", "Light", "Moderate", "Heavy"],
            )],
        ));
        StudySchema::new("s", root)
    }

    fn habits_cancer() -> Classifier {
        Classifier::parse_rules(
            "Habits (Cancer)",
            "cori",
            "Classifies packs per day according to conversations with cancer study on 5/3/02",
            Target::Domain {
                entity: "Procedure".into(),
                attribute: "Smoking".into(),
                domain: "class".into(),
            },
            &[
                "'None' <- PacksPerDay = 0",
                "'Light' <- 0 < PacksPerDay AND PacksPerDay < 2",
                "'Moderate' <- 2 <= PacksPerDay AND PacksPerDay < 5",
                "'Heavy' <- PacksPerDay >= 5",
            ],
        )
        .unwrap()
    }

    #[test]
    fn bind_and_classify_figure5a() {
        let b = habits_cancer().bind(&tree(), &schema()).unwrap();
        assert_eq!(b.form, "Procedure");
        assert_eq!(b.attr_nodes, vec!["PacksPerDay"]);
        // eval schema covers all three attributes of the form.
        assert_eq!(b.eval_schema.arity(), 3);
        let classify = |packs: Value| b.classify(&vec![packs, Value::Null, Value::Null]).unwrap();
        assert_eq!(classify(Value::Int(0)), Value::text("None"));
        assert_eq!(classify(Value::Int(1)), Value::text("Light"));
        assert_eq!(classify(Value::Int(4)), Value::text("Moderate"));
        assert_eq!(classify(Value::Int(9)), Value::text("Heavy"));
        assert_eq!(
            classify(Value::Null),
            Value::Null,
            "unanswered -> unclassified"
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        let c = Classifier::parse_rules(
            "overlap",
            "cori",
            "",
            Target::Domain {
                entity: "Procedure".into(),
                attribute: "Smoking".into(),
                domain: "class".into(),
            },
            &["'Light' <- PacksPerDay >= 0", "'Heavy' <- PacksPerDay >= 5"],
        )
        .unwrap();
        let b = c.bind(&tree(), &schema()).unwrap();
        assert_eq!(
            b.classify(&vec![Value::Int(9), Value::Null, Value::Null])
                .unwrap(),
            Value::text("Light")
        );
    }

    #[test]
    fn out_of_domain_literal_rejected_at_bind() {
        let c = Classifier::parse_rules(
            "bad",
            "cori",
            "",
            Target::Domain {
                entity: "Procedure".into(),
                attribute: "Smoking".into(),
                domain: "class".into(),
            },
            &["'Sometimes' <- PacksPerDay = 1"],
        )
        .unwrap();
        assert!(matches!(
            c.bind(&tree(), &schema()),
            Err(ClassifierError::OutsideDomain { .. })
        ));
    }

    #[test]
    fn entity_classifier_figure5c() {
        let c = Classifier::parse_rules(
            "Relevant Procedures",
            "cori",
            "Only consider procedures where surgery was performed",
            Target::Entity {
                entity: "Procedure".into(),
            },
            &["Procedure <- Procedure AND SurgeryPerformed = TRUE"],
        )
        .unwrap();
        let b = c.bind(&tree(), &schema()).unwrap();
        assert!(b
            .selects(&vec![Value::Null, Value::Bool(true), Value::Null])
            .unwrap());
        assert!(!b
            .selects(&vec![Value::Null, Value::Bool(false), Value::Null])
            .unwrap());
        assert!(!b
            .selects(&vec![Value::Null, Value::Null, Value::Null])
            .unwrap());
    }

    #[test]
    fn entity_classifier_requires_form_reference() {
        let c = Classifier::parse_rules(
            "noform",
            "cori",
            "",
            Target::Entity {
                entity: "Procedure".into(),
            },
            &["SurgeryPerformed <- SurgeryPerformed = TRUE"],
        )
        .unwrap();
        assert!(matches!(
            c.bind(&tree(), &schema()),
            Err(ClassifierError::BadEntityOutput(_))
        ));
    }

    #[test]
    fn wrong_contributor_rejected() {
        let c = habits_cancer();
        let mut other = tree();
        other.tool = "endosoft".into();
        assert!(matches!(
            c.bind(&other, &schema()),
            Err(ClassifierError::WrongContributor { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let c = Classifier::parse_rules(
            "ghost",
            "cori",
            "",
            Target::Domain {
                entity: "Procedure".into(),
                attribute: "Smoking".into(),
                domain: "class".into(),
            },
            &["'None' <- GhostNode = 0"],
        )
        .unwrap();
        assert!(matches!(
            c.bind(&tree(), &schema()),
            Err(ClassifierError::GTree(_))
        ));
    }

    #[test]
    fn empty_classifier_rejected() {
        let c = Classifier::new(
            "empty",
            "cori",
            "",
            Target::Entity {
                entity: "Procedure".into(),
            },
            vec![],
        );
        assert!(matches!(
            c.bind(&tree(), &schema()),
            Err(ClassifierError::Empty(_))
        ));
    }

    #[test]
    fn case_expr_equivalent_to_rule_walk() {
        let b = habits_cancer().bind(&tree(), &schema()).unwrap();
        let case = b.as_case_expr();
        for packs in [0i64, 1, 3, 7] {
            let row = vec![Value::Int(packs), Value::Null, Value::Null];
            assert_eq!(
                case.eval(&b.eval_schema, &row).unwrap(),
                b.classify(&row).unwrap()
            );
        }
    }

    #[test]
    fn eval_row_projection() {
        let b = habits_cancer().bind(&tree(), &schema()).unwrap();
        let naive = Schema::new(
            "Procedure",
            vec![
                Column::required("instance_id", DataType::Int),
                Column::new("PacksPerDay", DataType::Int),
                Column::new("SurgeryPerformed", DataType::Bool),
                Column::new("Alcohol", DataType::Int),
            ],
        )
        .unwrap();
        let row = vec![
            Value::Int(7),
            Value::Int(3),
            Value::Bool(true),
            Value::Int(0),
        ];
        let eval_row = b.eval_row_from(&naive, &row).unwrap();
        assert_eq!(b.classify(&eval_row).unwrap(), Value::text("Moderate"));
    }
}
