//! Annotations and provenance.
//!
//! "Anyone using the system can annotate and timestamp each of these
//! artifacts, as well as the studies themselves, so that it is clear who
//! generated them, when, and why" (Section 3).

use serde::{Deserialize, Serialize};

/// One annotation: author, ISO-8601 timestamp, free-text note. Timestamps
/// are caller-supplied strings so artifact files stay deterministic and
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    pub author: String,
    pub timestamp: String,
    pub note: String,
}

impl Annotation {
    pub fn new(
        author: impl Into<String>,
        timestamp: impl Into<String>,
        note: impl Into<String>,
    ) -> Annotation {
        Annotation {
            author: author.into(),
            timestamp: timestamp.into(),
            note: note.into(),
        }
    }
}

/// A trail of annotations, newest last. Every MultiClass artifact carries
/// one.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Provenance {
    pub annotations: Vec<Annotation>,
}

impl Provenance {
    pub fn new() -> Provenance {
        Provenance::default()
    }

    pub fn annotate(&mut self, a: Annotation) {
        self.annotations.push(a);
    }

    /// The creating annotation (first), if any.
    pub fn created(&self) -> Option<&Annotation> {
        self.annotations.first()
    }

    /// The most recent annotation, if any.
    pub fn last_touched(&self) -> Option<&Annotation> {
        self.annotations.last()
    }

    /// All distinct authors, in first-contribution order.
    pub fn authors(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.annotations {
            if !out.contains(&a.author.as_str()) {
                out.push(&a.author);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_tracks_order_and_authors() {
        let mut p = Provenance::new();
        p.annotate(Annotation::new(
            "jterwill",
            "2002-05-03T10:00:00",
            "created for cancer study",
        ));
        p.annotate(Annotation::new("lmd", "2002-06-01T09:00:00", "reviewed"));
        p.annotate(Annotation::new(
            "jterwill",
            "2002-07-01T12:00:00",
            "tightened thresholds",
        ));
        assert_eq!(p.created().unwrap().note, "created for cancer study");
        assert_eq!(p.last_touched().unwrap().timestamp, "2002-07-01T12:00:00");
        assert_eq!(p.authors(), vec!["jterwill", "lmd"]);
    }

    #[test]
    fn empty_provenance() {
        let p = Provenance::new();
        assert!(p.created().is_none());
        assert!(p.last_touched().is_none());
        assert!(p.authors().is_empty());
    }
}
