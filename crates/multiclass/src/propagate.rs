//! Classifier propagation across reporting-tool versions.
//!
//! Section 6 (future work): "handling new versions of a reporting tool by
//! propagating classifiers to the next version if their input nodes did
//! not change, and suggest new classifiers if there is a change."

use crate::classifier::Classifier;
use guava_gtree::diff::{GTreeDiff, NodeChange};
use serde::{Deserialize, Serialize};

/// The verdict for one classifier against a tool upgrade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PropagationVerdict {
    /// All input nodes unchanged: the classifier carries over as-is.
    Propagate,
    /// Some input node's context changed or vanished; the analyst must
    /// review. Lists `(node, what happened)`.
    NeedsReview(Vec<(String, String)>),
}

/// The report for a set of classifiers against one tool upgrade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    pub old_version: String,
    pub new_version: String,
    /// Classifier name → verdict.
    pub verdicts: Vec<(String, PropagationVerdict)>,
    /// Nodes new in this version — prompts to "suggest new classifiers".
    pub new_nodes: Vec<String>,
}

impl PropagationReport {
    /// Evaluate every classifier's input nodes against the diff.
    pub fn compute(classifiers: &[&Classifier], diff: &GTreeDiff) -> PropagationReport {
        let mut verdicts = Vec::with_capacity(classifiers.len());
        for c in classifiers {
            let is_cleaner = matches!(c.target, crate::classifier::Target::Cleaner { .. });
            let mut problems: Vec<(String, String)> = Vec::new();
            for node in c.referenced_nodes() {
                if is_cleaner && node.eq_ignore_ascii_case(crate::classifier::DISCARD) {
                    continue; // reserved cleaning token, not a g-tree node
                }
                match diff.changes.get(node) {
                    Some(NodeChange::Unchanged) => {}
                    Some(NodeChange::Removed) => {
                        problems.push((node.to_owned(), "removed in new version".into()))
                    }
                    Some(NodeChange::Changed(reasons)) => {
                        problems.push((node.to_owned(), reasons.join("; ")))
                    }
                    Some(NodeChange::Added) | None => {
                        // A node the old tree never had: the classifier was
                        // broken already; flag it.
                        problems.push((node.to_owned(), "not present in old version".into()))
                    }
                }
            }
            let verdict = if problems.is_empty() {
                PropagationVerdict::Propagate
            } else {
                PropagationVerdict::NeedsReview(problems)
            };
            verdicts.push((c.name.clone(), verdict));
        }
        PropagationReport {
            old_version: diff.old_version.clone(),
            new_version: diff.new_version.clone(),
            verdicts,
            new_nodes: diff.added_nodes().iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Classifiers that carry over untouched.
    pub fn propagated(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|(_, v)| *v == PropagationVerdict::Propagate)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Classifiers needing analyst review.
    pub fn needing_review(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, PropagationVerdict::NeedsReview(_)))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Target;
    use guava_forms::control::{ChoiceOption, Control};
    use guava_forms::form::{FormDef, ReportingTool};
    use guava_gtree::tree::GTree;
    use guava_relational::value::DataType;

    fn v(version: &str, smoking_options: usize, with_asthma: bool) -> GTree {
        let mut controls = vec![
            Control::check_box("hypoxia", "Hypoxia?"),
            Control::radio(
                "smoking",
                "Smoke?",
                (0..smoking_options)
                    .map(|i| ChoiceOption::new(format!("opt{i}"), i as i64))
                    .collect(),
            ),
            Control::numeric("packs", "Packs per day", DataType::Int),
        ];
        if with_asthma {
            controls.push(Control::check_box("asthma", "Asthma?"));
        }
        GTree::derive(&ReportingTool::new(
            "t",
            version,
            vec![FormDef::new("proc", "Procedure", controls)],
        ))
        .unwrap()
    }

    fn classifier(name: &str, rules: &[&str]) -> Classifier {
        Classifier::parse_rules(
            name,
            "t",
            "",
            Target::Domain {
                entity: "P".into(),
                attribute: "A".into(),
                domain: "D".into(),
            },
            rules,
        )
        .unwrap()
    }

    #[test]
    fn unchanged_inputs_propagate() {
        let diff = GTreeDiff::compute(&v("1.0", 2, false), &v("2.0", 3, true));
        let packs_only = classifier("packs_cls", &["'x' <- packs > 0"]);
        let smoking_dep = classifier("smoke_cls", &["'x' <- smoking = 1 AND packs > 0"]);
        let report = PropagationReport::compute(&[&packs_only, &smoking_dep], &diff);
        assert_eq!(report.propagated(), vec!["packs_cls"]);
        assert_eq!(report.needing_review(), vec!["smoke_cls"]);
        // The new `asthma` node is suggested for new classifiers.
        assert_eq!(report.new_nodes, vec!["asthma"]);
    }

    #[test]
    fn review_verdict_names_the_node_and_reason() {
        let diff = GTreeDiff::compute(&v("1.0", 2, false), &v("2.0", 3, false));
        let c = classifier("smoke_cls", &["'x' <- smoking = 1"]);
        let report = PropagationReport::compute(&[&c], &diff);
        match &report.verdicts[0].1 {
            PropagationVerdict::NeedsReview(problems) => {
                assert_eq!(problems[0].0, "smoking");
                assert!(problems[0].1.contains("options"));
            }
            v => panic!("expected review, got {v:?}"),
        }
    }

    #[test]
    fn identical_versions_propagate_everything() {
        let diff = GTreeDiff::compute(&v("1.0", 2, false), &v("1.0", 2, false));
        let c = classifier(
            "c",
            &["'x' <- smoking = 1 AND packs > 0 AND hypoxia = TRUE"],
        );
        let report = PropagationReport::compute(&[&c], &diff);
        assert_eq!(report.propagated().len(), 1);
        assert!(report.new_nodes.is_empty());
    }
}
