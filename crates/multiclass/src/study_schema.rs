//! Study schemas: the conceptual model analysts study against.
//!
//! "A study schema collects all of the things that analysts want to study
//! ... and organizes them at a conceptual level. ... the only relationship
//! type is has-a with a single entity of primary interest sitting atop a
//! tree" (Section 3.3, Figure 4). Attributes carry *multiple* domains.

use crate::annotate::Provenance;
use crate::domain::Domain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An attribute of a study-schema entity, with one or more domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    pub name: String,
    pub domains: Vec<Domain>,
}

impl AttributeDef {
    pub fn new(name: impl Into<String>, domains: Vec<Domain>) -> AttributeDef {
        AttributeDef {
            name: name.into(),
            domains,
        }
    }

    pub fn domain(&self, name: &str) -> Option<&Domain> {
        self.domains.iter().find(|d| d.name == name)
    }
}

/// An entity in the has-a tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityDef {
    pub name: String,
    pub attributes: Vec<AttributeDef>,
    /// has-a children (e.g. Procedure has-a Finding, has-a New Medication).
    pub children: Vec<EntityDef>,
}

impl EntityDef {
    pub fn new(name: impl Into<String>) -> EntityDef {
        EntityDef {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    pub fn with_attribute(mut self, a: AttributeDef) -> EntityDef {
        self.attributes.push(a);
        self
    }

    pub fn with_child(mut self, c: EntityDef) -> EntityDef {
        self.children.push(c);
        self
    }

    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    fn walk(&self) -> impl Iterator<Item = &EntityDef> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let next = stack.pop()?;
            for c in next.children.iter().rev() {
                stack.push(c);
            }
            Some(next)
        })
    }
}

/// Errors raised by study-schema validation and editing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateEntity(String),
    DuplicateAttribute { entity: String, attribute: String },
    DuplicateDomain { attribute: String, domain: String },
    UnknownEntity(String),
    UnknownAttribute { entity: String, attribute: String },
    UnknownDomain { attribute: String, domain: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateEntity(e) => write!(f, "duplicate entity `{e}`"),
            SchemaError::DuplicateAttribute { entity, attribute } => {
                write!(f, "duplicate attribute `{attribute}` on `{entity}`")
            }
            SchemaError::DuplicateDomain { attribute, domain } => {
                write!(f, "duplicate domain `{domain}` on `{attribute}`")
            }
            SchemaError::UnknownEntity(e) => write!(f, "unknown entity `{e}`"),
            SchemaError::UnknownAttribute { entity, attribute } => {
                write!(f, "unknown attribute `{attribute}` on `{entity}`")
            }
            SchemaError::UnknownDomain { attribute, domain } => {
                write!(f, "unknown domain `{domain}` on `{attribute}`")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A study schema: named, annotated, with a single primary entity at the
/// root of a has-a tree. "The study schema may be incomplete compared to a
/// global schema ... Analysts can expand the study schema as needed for new
/// studies."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySchema {
    pub name: String,
    pub root: EntityDef,
    pub provenance: Provenance,
}

impl StudySchema {
    pub fn new(name: impl Into<String>, root: EntityDef) -> StudySchema {
        StudySchema {
            name: name.into(),
            root,
            provenance: Provenance::new(),
        }
    }

    /// All entities, root first.
    pub fn entities(&self) -> Vec<&EntityDef> {
        self.root.walk().collect()
    }

    pub fn entity(&self, name: &str) -> Result<&EntityDef, SchemaError> {
        self.root
            .walk()
            .find(|e| e.name == name)
            .ok_or_else(|| SchemaError::UnknownEntity(name.to_owned()))
    }

    fn entity_mut<'a>(root: &'a mut EntityDef, name: &str) -> Option<&'a mut EntityDef> {
        if root.name == name {
            return Some(root);
        }
        for c in &mut root.children {
            if let Some(found) = Self::entity_mut(c, name) {
                return Some(found);
            }
        }
        None
    }

    /// Resolve `entity.attribute.domain`.
    pub fn resolve(
        &self,
        entity: &str,
        attribute: &str,
        domain: &str,
    ) -> Result<&Domain, SchemaError> {
        let e = self.entity(entity)?;
        let a = e
            .attribute(attribute)
            .ok_or_else(|| SchemaError::UnknownAttribute {
                entity: entity.to_owned(),
                attribute: attribute.to_owned(),
            })?;
        a.domain(domain).ok_or_else(|| SchemaError::UnknownDomain {
            attribute: attribute.to_owned(),
            domain: domain.to_owned(),
        })
    }

    /// Structural validation: unique entity names, unique attribute names
    /// per entity, unique domain names per attribute.
    pub fn validate(&self) -> Result<(), Vec<SchemaError>> {
        let mut errors = Vec::new();
        let entities = self.entities();
        for (i, e) in entities.iter().enumerate() {
            if entities[..i].iter().any(|p| p.name == e.name) {
                errors.push(SchemaError::DuplicateEntity(e.name.clone()));
            }
            for (j, a) in e.attributes.iter().enumerate() {
                if e.attributes[..j].iter().any(|p| p.name == a.name) {
                    errors.push(SchemaError::DuplicateAttribute {
                        entity: e.name.clone(),
                        attribute: a.name.clone(),
                    });
                }
                for (k, d) in a.domains.iter().enumerate() {
                    if a.domains[..k].iter().any(|p| p.name == d.name) {
                        errors.push(SchemaError::DuplicateDomain {
                            attribute: a.name.clone(),
                            domain: d.name.clone(),
                        });
                    }
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Expand the schema for a new study: add an attribute to an entity.
    pub fn add_attribute(&mut self, entity: &str, attr: AttributeDef) -> Result<(), SchemaError> {
        let e = Self::entity_mut(&mut self.root, entity)
            .ok_or_else(|| SchemaError::UnknownEntity(entity.to_owned()))?;
        if e.attribute(&attr.name).is_some() {
            return Err(SchemaError::DuplicateAttribute {
                entity: entity.to_owned(),
                attribute: attr.name,
            });
        }
        e.attributes.push(attr);
        Ok(())
    }

    /// Expand an attribute with a new domain.
    pub fn add_domain(
        &mut self,
        entity: &str,
        attribute: &str,
        domain: Domain,
    ) -> Result<(), SchemaError> {
        let e = Self::entity_mut(&mut self.root, entity)
            .ok_or_else(|| SchemaError::UnknownEntity(entity.to_owned()))?;
        let a = e
            .attributes
            .iter_mut()
            .find(|a| a.name == attribute)
            .ok_or_else(|| SchemaError::UnknownAttribute {
                entity: entity.to_owned(),
                attribute: attribute.to_owned(),
            })?;
        if a.domain(&domain.name).is_some() {
            return Err(SchemaError::DuplicateDomain {
                attribute: attribute.to_owned(),
                domain: domain.name,
            });
        }
        a.domains.push(domain);
        Ok(())
    }

    /// Figure-4-style rendering: entities with attributes and their
    /// domain(s), has-a children indented.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_entity(&self.root, 0, &mut out);
        out
    }
}

fn render_entity(e: &EntityDef, depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    out.push_str(&format!("{pad}Entity: {}\n", e.name));
    for a in &e.attributes {
        let domains: Vec<String> = a
            .domains
            .iter()
            .map(|d| format!("{} ({})", d.name, d.description))
            .collect();
        out.push_str(&format!("{pad}  {} :: {}\n", a.name, domains.join(" | ")));
    }
    for c in &e.children {
        out.push_str(&format!("{pad}  has-a\n"));
        render_entity(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainSpec;

    /// A miniature of Figure 4's study schema.
    fn schema() -> StudySchema {
        let smoking = AttributeDef::new(
            "Smoking",
            vec![
                Domain::new(
                    "packs_per_day",
                    "Integer (Packs/Day)",
                    DomainSpec::Integer {
                        min: Some(0),
                        max: None,
                    },
                ),
                Domain::categorical(
                    "status",
                    "None, Current, Prev",
                    &["None", "Current", "Previous"],
                ),
            ],
        );
        let hypoxia = AttributeDef::new(
            "TransientHypoxia",
            vec![Domain::boolean("yesno", "Boolean (yes/no)")],
        );
        let root = EntityDef::new("Procedure")
            .with_attribute(smoking)
            .with_attribute(hypoxia)
            .with_child(
                EntityDef::new("FindingOfFissure").with_attribute(AttributeDef::new(
                    "Size",
                    vec![Domain::new(
                        "millimeters",
                        "Integer (mm)",
                        DomainSpec::Integer {
                            min: Some(0),
                            max: None,
                        },
                    )],
                )),
            )
            .with_child(
                EntityDef::new("NewMedication").with_attribute(AttributeDef::new(
                    "Drug",
                    vec![Domain::new("name", "String (Name)", DomainSpec::Text)],
                )),
            );
        StudySchema::new("cori_procedures", root)
    }

    #[test]
    fn valid_schema_passes() {
        schema().validate().unwrap();
    }

    #[test]
    fn resolve_paths() {
        let s = schema();
        assert!(s.resolve("Procedure", "Smoking", "packs_per_day").is_ok());
        assert!(s.resolve("FindingOfFissure", "Size", "millimeters").is_ok());
        assert!(matches!(
            s.resolve("Procedure", "Smoking", "nope"),
            Err(SchemaError::UnknownDomain { .. })
        ));
        assert!(matches!(
            s.resolve("Procedure", "Ghost", "x"),
            Err(SchemaError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.resolve("Ghost", "x", "y"),
            Err(SchemaError::UnknownEntity(_))
        ));
    }

    #[test]
    fn entities_root_first() {
        let s = schema();
        let names: Vec<&str> = s.entities().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Procedure", "FindingOfFissure", "NewMedication"]
        );
    }

    #[test]
    fn expansion_for_new_studies() {
        let mut s = schema();
        s.add_attribute(
            "Procedure",
            AttributeDef::new("Asthma", vec![Domain::boolean("yesno", "Boolean")]),
        )
        .unwrap();
        assert!(s.entity("Procedure").unwrap().attribute("Asthma").is_some());
        // Adding a second domain to an existing attribute.
        s.add_domain(
            "Procedure",
            "Smoking",
            Domain::categorical(
                "class",
                "None, Lt, Med, Hvy",
                &["None", "Light", "Moderate", "Heavy"],
            ),
        )
        .unwrap();
        assert_eq!(
            s.entity("Procedure")
                .unwrap()
                .attribute("Smoking")
                .unwrap()
                .domains
                .len(),
            3
        );
        s.validate().unwrap();
    }

    #[test]
    fn duplicates_rejected() {
        let mut s = schema();
        assert!(matches!(
            s.add_attribute("Procedure", AttributeDef::new("Smoking", vec![])),
            Err(SchemaError::DuplicateAttribute { .. })
        ));
        assert!(matches!(
            s.add_domain(
                "Procedure",
                "Smoking",
                Domain::categorical("status", "x", &[])
            ),
            Err(SchemaError::DuplicateDomain { .. })
        ));
    }

    #[test]
    fn validate_catches_duplicate_entities() {
        let root = EntityDef::new("P").with_child(EntityDef::new("P"));
        let s = StudySchema::new("bad", root);
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SchemaError::DuplicateEntity(_))));
    }

    #[test]
    fn render_shows_hierarchy_and_domains() {
        let r = schema().render();
        assert!(r.contains("Entity: Procedure"));
        assert!(r.contains("Smoking :: packs_per_day (Integer (Packs/Day)) | status"));
        assert!(r.contains("has-a"));
        assert!(r.contains("Entity: NewMedication"));
    }
}
