//! Studies and the registries that make decisions reusable.
//!
//! "A study comprises all of the decisions that a data analyst makes from
//! the time a request arrives to when final statistical analyses are run"
//! (Section 2). A [`Study`] records which attributes/domains the analyst
//! wants, which classifiers realize them per contributor, and a WHERE-style
//! filter. Registries let analysts "look at other studies that use the
//! same study schema to make informed decisions as to which classifiers to
//! use" (Section 3).

use crate::annotate::Provenance;
use crate::classifier::{Classifier, Target};
use guava_relational::expr::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One column of a study's output: an attribute viewed through a domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyColumn {
    pub entity: String,
    pub attribute: String,
    pub domain: String,
}

impl StudyColumn {
    pub fn new(
        entity: impl Into<String>,
        attribute: impl Into<String>,
        domain: impl Into<String>,
    ) -> StudyColumn {
        StudyColumn {
            entity: entity.into(),
            attribute: attribute.into(),
            domain: domain.into(),
        }
    }

    /// Output column name in study result tables: `Attribute_domain`.
    pub fn column_name(&self) -> String {
        format!("{}_{}", self.attribute, self.domain)
    }
}

impl fmt::Display for StudyColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} : {}", self.entity, self.attribute, self.domain)
    }
}

/// The classifier choices for one contributor within a study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContributorSelection {
    pub contributor: String,
    /// Entity classifier names per entity (from the classifier registry).
    pub entity_classifiers: Vec<String>,
    /// Domain classifier names realizing the study's columns.
    pub domain_classifiers: Vec<String>,
    /// Cleaning classifier names (Section 6 extension): instances they
    /// mark with DISCARD are dropped before entity selection.
    #[serde(default)]
    pub cleaning_classifiers: Vec<String>,
}

impl ContributorSelection {
    pub fn new(
        contributor: impl Into<String>,
        entity_classifiers: Vec<String>,
        domain_classifiers: Vec<String>,
    ) -> ContributorSelection {
        ContributorSelection {
            contributor: contributor.into(),
            entity_classifiers,
            domain_classifiers,
            cleaning_classifiers: Vec::new(),
        }
    }

    pub fn with_cleaning(mut self, cleaning: Vec<String>) -> ContributorSelection {
        self.cleaning_classifiers = cleaning;
        self
    }
}

/// A study definition: what to extract, through which classifiers, filtered
/// how. Everything is annotated so later analysts can "document, inspect,
/// reuse, and modify integration decisions from prior studies".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    pub name: String,
    /// Research question, verbatim (e.g. Study 2: "Of all procedures on
    /// ex-smokers, how many had a complication of hypoxia?").
    pub question: String,
    pub study_schema: String,
    /// The entity whose instances form the result rows.
    pub primary_entity: String,
    pub columns: Vec<StudyColumn>,
    pub selections: Vec<ContributorSelection>,
    /// Optional filter over the *classified* output columns (referenced by
    /// `StudyColumn::column_name`).
    pub filter: Option<Expr>,
    pub provenance: Provenance,
}

impl Study {
    pub fn new(
        name: impl Into<String>,
        question: impl Into<String>,
        study_schema: impl Into<String>,
        primary_entity: impl Into<String>,
    ) -> Study {
        Study {
            name: name.into(),
            question: question.into(),
            study_schema: study_schema.into(),
            primary_entity: primary_entity.into(),
            columns: Vec::new(),
            selections: Vec::new(),
            filter: None,
            provenance: Provenance::new(),
        }
    }

    pub fn with_column(mut self, c: StudyColumn) -> Study {
        self.columns.push(c);
        self
    }

    pub fn with_selection(mut self, s: ContributorSelection) -> Study {
        self.selections.push(s);
        self
    }

    pub fn with_filter(mut self, filter: Expr) -> Study {
        self.filter = Some(filter);
        self
    }

    pub fn selection_for(&self, contributor: &str) -> Option<&ContributorSelection> {
        self.selections
            .iter()
            .find(|s| s.contributor == contributor)
    }
}

/// A named collection of classifiers, queryable by target — the mechanism
/// behind "MultiClass allows more than one classifier to map data from the
/// same contributor to the same domain".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassifierRegistry {
    classifiers: Vec<Classifier>,
}

impl ClassifierRegistry {
    pub fn new() -> ClassifierRegistry {
        ClassifierRegistry::default()
    }

    /// Register a classifier. Names are unique per contributor.
    pub fn register(&mut self, c: Classifier) -> Result<(), String> {
        if self.get(&c.contributor, &c.name).is_some() {
            return Err(format!(
                "classifier `{}` already registered for `{}`",
                c.name, c.contributor
            ));
        }
        self.classifiers.push(c);
        Ok(())
    }

    pub fn get(&self, contributor: &str, name: &str) -> Option<&Classifier> {
        self.classifiers
            .iter()
            .find(|c| c.contributor == contributor && c.name == name)
    }

    pub fn all(&self) -> &[Classifier] {
        &self.classifiers
    }

    /// Every classifier mapping some contributor's data into a given
    /// domain — the analyst's menu when configuring a study.
    pub fn for_domain(&self, entity: &str, attribute: &str, domain: &str) -> Vec<&Classifier> {
        self.classifiers
            .iter()
            .filter(|c| {
                matches!(&c.target, Target::Domain { entity: e, attribute: a, domain: d }
                    if e == entity && a == attribute && d == domain)
            })
            .collect()
    }

    /// Entity classifiers for an entity.
    pub fn for_entity(&self, entity: &str) -> Vec<&Classifier> {
        self.classifiers
            .iter()
            .filter(|c| matches!(&c.target, Target::Entity { entity: e } if e == entity))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.classifiers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classifiers.is_empty()
    }
}

/// A registry of studies: the institutional memory that lets analysts
/// revisit "decisions made for prior studies and reuse them or not each
/// time the data is used".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StudyRegistry {
    studies: Vec<Study>,
}

impl StudyRegistry {
    pub fn new() -> StudyRegistry {
        StudyRegistry::default()
    }

    pub fn register(&mut self, s: Study) -> Result<(), String> {
        if self.get(&s.name).is_some() {
            return Err(format!("study `{}` already registered", s.name));
        }
        self.studies.push(s);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<&Study> {
        self.studies.iter().find(|s| s.name == name)
    }

    /// Prior studies over the same study schema.
    pub fn sharing_schema(&self, study_schema: &str) -> Vec<&Study> {
        self.studies
            .iter()
            .filter(|s| s.study_schema == study_schema)
            .collect()
    }

    /// Which studies used a particular classifier? (Decision audit.)
    pub fn using_classifier(&self, contributor: &str, classifier: &str) -> Vec<&Study> {
        self.studies
            .iter()
            .filter(|s| {
                s.selections.iter().any(|sel| {
                    sel.contributor == contributor
                        && (sel.domain_classifiers.iter().any(|c| c == classifier)
                            || sel.entity_classifiers.iter().any(|c| c == classifier))
                })
            })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.studies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.studies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;

    fn domain_target() -> Target {
        Target::Domain {
            entity: "Procedure".into(),
            attribute: "Smoking".into(),
            domain: "class".into(),
        }
    }

    fn classifier(name: &str, contributor: &str, target: Target) -> Classifier {
        Classifier::parse_rules(name, contributor, "", target, &["'None' <- x = 0"]).unwrap()
    }

    #[test]
    fn registry_finds_multiple_classifiers_per_domain() {
        let mut reg = ClassifierRegistry::new();
        reg.register(classifier("Habits (Cancer)", "cori", domain_target()))
            .unwrap();
        reg.register(classifier("Habits (Chemistry)", "cori", domain_target()))
            .unwrap();
        reg.register(classifier(
            "Other",
            "cori",
            Target::Entity {
                entity: "Procedure".into(),
            },
        ))
        .unwrap();
        let menu = reg.for_domain("Procedure", "Smoking", "class");
        assert_eq!(
            menu.len(),
            2,
            "two classifiers target the same domain (Figure 5a)"
        );
        assert_eq!(reg.for_entity("Procedure").len(), 1);
    }

    #[test]
    fn duplicate_names_rejected_per_contributor() {
        let mut reg = ClassifierRegistry::new();
        reg.register(classifier("X", "cori", domain_target()))
            .unwrap();
        assert!(reg
            .register(classifier("X", "cori", domain_target()))
            .is_err());
        // Same name under another contributor is fine.
        reg.register(classifier("X", "endosoft", domain_target()))
            .unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn study_builder_and_lookup() {
        let study = Study::new(
            "hypoxia_2006",
            "Of all procedures...",
            "cori_procedures",
            "Procedure",
        )
        .with_column(StudyColumn::new("Procedure", "Smoking", "class"))
        .with_selection(ContributorSelection {
            contributor: "cori".into(),
            entity_classifiers: vec!["All Procedures".into()],
            domain_classifiers: vec!["Habits (Cancer)".into()],
            cleaning_classifiers: vec![],
        });
        assert_eq!(study.columns[0].column_name(), "Smoking_class");
        assert!(study.selection_for("cori").is_some());
        assert!(study.selection_for("ghost").is_none());
    }

    #[test]
    fn study_registry_supports_reuse_queries() {
        let mut reg = StudyRegistry::new();
        let mk = |name: &str, schema: &str, classifier: &str| {
            Study::new(name, "", schema, "Procedure").with_selection(ContributorSelection {
                contributor: "cori".into(),
                entity_classifiers: vec![],
                domain_classifiers: vec![classifier.into()],
                cleaning_classifiers: vec![],
            })
        };
        reg.register(mk("s1", "cori_procedures", "Habits (Cancer)"))
            .unwrap();
        reg.register(mk("s2", "cori_procedures", "Habits (Chemistry)"))
            .unwrap();
        reg.register(mk("s3", "medications", "Habits (Cancer)"))
            .unwrap();
        assert_eq!(reg.sharing_schema("cori_procedures").len(), 2);
        assert_eq!(reg.using_classifier("cori", "Habits (Cancer)").len(), 2);
        assert!(reg.register(mk("s1", "x", "y")).is_err());
    }
}
