//! The classifier expression language.
//!
//! "Each classifier is a list of declarative statements of the form
//! `A ← B`, where A is an arithmetic calculation and B is a Boolean
//! condition. Both clauses use nodes in a g-tree as arguments"
//! (Section 3.4, Figure 5). This module parses that surface syntax into
//! the relational [`Expr`] AST, which is how classifiers later compile to
//! relational plans and ETL components (Hypothesis #3: the language is
//! "equivalent in expressive power to conjunctive queries with union").
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! rule    := expr '<-' expr
//! expr    := and ( OR and )*
//! and     := not ( AND not )*
//! not     := NOT not | cmp
//! cmp     := add ( ('='|'<>'|'<'|'<='|'>'|'>=') add )?
//!          | add IS [NOT] ANSWERED            -- enablement-aware null test
//!          | add IS [NOT] NULL
//!          | add IN '(' literal (',' literal)* ')'
//! add     := mul ( ('+'|'-') mul )*
//! mul     := unary ( ('*'|'/') unary )*
//! unary   := '-' unary | primary
//! primary := literal | identifier | '(' expr ')'
//! literal := INT | FLOAT | 'text' | TRUE | FALSE | NULL | DATE 'YYYY-MM-DD'
//! ```

use guava_relational::expr::{BinOp, Expr};
use guava_relational::value::Value;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'(' | b')' | b',' | b'+' | b'*' | b'/' | b'=' => {
                    self.pos += 1;
                    let s = match c {
                        b'(' => "(",
                        b')' => ")",
                        b',' => ",",
                        b'+' => "+",
                        b'*' => "*",
                        b'/' => "/",
                        _ => "=",
                    };
                    out.push((Tok::Sym(s), start));
                }
                b'-' => {
                    self.pos += 1;
                    out.push((Tok::Sym("-"), start));
                }
                b'<' => {
                    self.pos += 1;
                    let sym = match self.bytes.get(self.pos) {
                        Some(b'-') => {
                            self.pos += 1;
                            "<-"
                        }
                        Some(b'=') => {
                            self.pos += 1;
                            "<="
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            "<>"
                        }
                        _ => "<",
                    };
                    out.push((Tok::Sym(sym), start));
                }
                b'>' => {
                    self.pos += 1;
                    let sym = if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        ">="
                    } else {
                        ">"
                    };
                    out.push((Tok::Sym(sym), start));
                }
                // The paper typesets `←` and `≤`/`≥`; accept the unicode
                // arrows analysts might paste from it.
                0xE2 => {
                    let rest = &self.src[self.pos..];
                    if let Some(stripped) = rest.strip_prefix('\u{2190}') {
                        self.pos += rest.len() - stripped.len();
                        out.push((Tok::Sym("<-"), start));
                    } else if let Some(stripped) = rest.strip_prefix('\u{2264}') {
                        self.pos += rest.len() - stripped.len();
                        out.push((Tok::Sym("<="), start));
                    } else if let Some(stripped) = rest.strip_prefix('\u{2265}') {
                        self.pos += rest.len() - stripped.len();
                        out.push((Tok::Sym(">="), start));
                    } else {
                        return Err(self.error("unexpected character"));
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.bytes.get(self.pos) {
                            None => return Err(self.error("unterminated string literal")),
                            Some(b'\'') if self.bytes.get(self.pos + 1) == Some(&b'\'') => {
                                s.push('\'');
                                self.pos += 2;
                            }
                            Some(b'\'') => {
                                self.pos += 1;
                                break;
                            }
                            Some(_) => {
                                let ch = self.src[self.pos..].chars().next().unwrap();
                                s.push(ch);
                                self.pos += ch.len_utf8();
                            }
                        }
                    }
                    out.push((Tok::Str(s), start));
                }
                b'0'..=b'9' => {
                    let mut end = self.pos;
                    let mut is_float = false;
                    while end < self.bytes.len() {
                        match self.bytes[end] {
                            b'0'..=b'9' => end += 1,
                            b'.' if !is_float
                                && matches!(self.bytes.get(end + 1), Some(b'0'..=b'9')) =>
                            {
                                is_float = true;
                                end += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = &self.src[self.pos..end];
                    self.pos = end;
                    let tok = if is_float {
                        Tok::Float(text.parse().map_err(|_| self.error("bad float"))?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| self.error("integer too large"))?)
                    };
                    out.push((tok, start));
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && matches!(self.bytes[end], b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                    {
                        end += 1;
                    }
                    let word = &self.src[self.pos..end];
                    self.pos = end;
                    out.push((Tok::Ident(word.to_owned()), start));
                }
                _ => return Err(self.error(format!("unexpected character `{}`", c as char))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.idx).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.idx).map_or(usize::MAX, |(_, p)| *p)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.idx).map(|(t, _)| t.clone());
        self.idx += 1;
        t
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`")))
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if self.eat_kw("ANSWERED") {
                // `x IS ANSWERED` — the UI-speak null test.
                return Ok(if negated {
                    lhs.is_null()
                } else {
                    lhs.is_not_null()
                });
            }
            if self.eat_kw("NULL") {
                return Ok(if negated {
                    lhs.is_not_null()
                } else {
                    lhs.is_null()
                });
            }
            return Err(self.error("expected ANSWERED or NULL after IS"));
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut values = vec![self.literal()?];
            while self.eat_sym(",") {
                values.push(self.literal()?);
            }
            self.expect_sym(")")?;
            return Ok(lhs.in_list(values));
        }
        for (sym, op) in [
            ("=", BinOp::Eq),
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let rhs = self.add_expr()?;
                return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                e = e.add(self.mul_expr()?);
            } else if self.eat_sym("-") {
                e = e.sub(self.mul_expr()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_sym("*") {
                e = e.mul(self.unary()?);
            } else if self.eat_sym("/") {
                e = e.div(self.unary()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.peek().cloned() {
            Some(Tok::Int(_)) | Some(Tok::Float(_)) | Some(Tok::Str(_)) => {
                Ok(Expr::Lit(self.literal()?))
            }
            Some(Tok::Ident(w)) => {
                if w.eq_ignore_ascii_case("TRUE")
                    || w.eq_ignore_ascii_case("FALSE")
                    || w.eq_ignore_ascii_case("NULL")
                    || w.eq_ignore_ascii_case("DATE")
                {
                    return Ok(Expr::Lit(self.literal()?));
                }
                self.bump();
                Ok(Expr::col(w))
            }
            _ => Err(self.error("expected expression")),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("DATE") => {
                let s = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    _ => return Err(self.error("expected 'YYYY-MM-DD' after DATE")),
                };
                match guava_relational::algebra::cast_text(
                    &s,
                    guava_relational::value::DataType::Date,
                ) {
                    Ok(v) => Ok(v),
                    Err(_) => Err(self.error(format!("invalid date literal '{s}'"))),
                }
            }
            _ => Err(self.error("expected literal")),
        }
    }

    fn at_end(&self) -> bool {
        self.idx == self.tokens.len()
    }
}

/// Parse a single expression; the whole input must be consumed.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser { tokens, idx: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

/// Parse a classifier rule `output <- guard`, the paper's `A ← B`.
pub fn parse_rule(src: &str) -> Result<(Expr, Expr), ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser { tokens, idx: 0 };
    let output = p.expr()?;
    if !p.eat_sym("<-") {
        return Err(p.error("expected `<-` between output and condition"));
    }
    let guard = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing input after rule"));
    }
    Ok((output, guard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use guava_relational::prelude::*;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::new("PacksPerDay", DataType::Int),
                Column::new("TumorX", DataType::Float),
                Column::new("TumorY", DataType::Float),
                Column::new("TumorZ", DataType::Float),
                Column::new("SurgeryPerformed", DataType::Bool),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure5a_cancer_rules_parse_and_evaluate() {
        // Classifier Habits (Cancer), Figure 5a.
        let rules = [
            ("'None' <- PacksPerDay = 0", 0i64, "None"),
            ("'Light' <- 0 < PacksPerDay AND PacksPerDay < 2", 1, "Light"),
            (
                "'Moderate' <- 2 <= PacksPerDay AND PacksPerDay < 5",
                3,
                "Moderate",
            ),
            ("'Heavy' <- PacksPerDay >= 5", 7, "Heavy"),
        ];
        let s = schema();
        for (text, packs, label) in rules {
            let (out, guard) = parse_rule(text).unwrap();
            let row = vec![
                Value::Int(packs),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ];
            assert!(guard.matches(&s, &row).unwrap(), "guard of {text}");
            assert_eq!(out.eval(&s, &row).unwrap(), Value::text(label));
        }
    }

    #[test]
    fn figure5b_tumor_volume_rule() {
        // "TumorX * TumorY * TumorZ * 0.52 <- TumorX > 0 AND TumorY > 0 AND TumorZ > 0"
        let (out, guard) = parse_rule(
            "TumorX * TumorY * TumorZ * 0.52 <- TumorX > 0 AND TumorY > 0 AND TumorZ > 0",
        )
        .unwrap();
        let s = schema();
        let row = vec![
            Value::Null,
            Value::Float(2.0),
            Value::Float(3.0),
            Value::Float(4.0),
            Value::Null,
        ];
        assert!(guard.matches(&s, &row).unwrap());
        assert_eq!(
            out.eval(&s, &row).unwrap(),
            Value::Float(2.0 * 3.0 * 4.0 * 0.52)
        );
    }

    #[test]
    fn figure5c_entity_rule_shape() {
        let (out, guard) =
            parse_rule("Procedure <- Procedure AND SurgeryPerformed = TRUE").unwrap();
        assert_eq!(out, Expr::col("Procedure"));
        assert_eq!(
            guard.referenced_columns(),
            vec!["Procedure", "SurgeryPerformed"]
        );
    }

    #[test]
    fn unicode_arrow_accepted() {
        let (out, _) = parse_rule("'None' \u{2190} PacksPerDay = 0").unwrap();
        assert_eq!(out, Expr::lit("None"));
        let e = parse_expr("PacksPerDay \u{2264} 5").unwrap();
        assert_eq!(e, Expr::col("PacksPerDay").le(Expr::lit(5i64)));
    }

    #[test]
    fn is_answered_and_null() {
        assert_eq!(
            parse_expr("x IS ANSWERED").unwrap(),
            Expr::col("x").is_not_null()
        );
        assert_eq!(
            parse_expr("x IS NOT ANSWERED").unwrap(),
            Expr::col("x").is_null()
        );
        assert_eq!(parse_expr("x IS NULL").unwrap(), Expr::col("x").is_null());
        assert_eq!(
            parse_expr("x IS NOT NULL").unwrap(),
            Expr::col("x").is_not_null()
        );
    }

    #[test]
    fn in_list_and_literals() {
        let e = parse_expr("status IN ('Current', 'Previous')").unwrap();
        assert_eq!(
            e,
            Expr::col("status").in_list(vec![Value::text("Current"), Value::text("Previous")])
        );
        assert_eq!(parse_expr("NULL").unwrap(), Expr::Lit(Value::Null));
        assert_eq!(
            parse_expr("DATE '2006-03-26'").unwrap(),
            Expr::Lit(Value::date_from_ymd(2006, 3, 26))
        );
    }

    #[test]
    fn precedence_and_parens() {
        // a + b * c parses as a + (b * c)
        let e = parse_expr("1 + 2 * 3").unwrap();
        let s = schema();
        assert_eq!(e.eval(&s, &vec![Value::Null; 5]).unwrap(), Value::Int(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&s, &vec![Value::Null; 5]).unwrap(), Value::Int(9));
        // NOT binds tighter than AND; AND tighter than OR.
        let e = parse_expr("NOT FALSE AND FALSE OR TRUE").unwrap();
        assert_eq!(
            e.eval(&s, &vec![Value::Null; 5]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn string_escaping() {
        let e = parse_expr("'it''s'").unwrap();
        assert_eq!(e, Expr::lit("it's"));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_expr("x is answered and y = true").is_ok());
        assert!(parse_expr("x In (1, 2)").is_ok());
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let s = schema();
        let e = parse_expr("-3 + 5").unwrap();
        assert_eq!(e.eval(&s, &vec![Value::Null; 5]).unwrap(), Value::Int(2));
        let e = parse_expr("PacksPerDay > -1").unwrap();
        let row = vec![
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert!(e.matches(&s, &row).unwrap());
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_expr("1 + ").unwrap_err();
        assert!(err.message.contains("expected expression"));
        let err = parse_rule("'x' PacksPerDay = 0").unwrap_err();
        assert!(err.message.contains("<-"));
        assert!(parse_expr("x IS BANANA").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_expr("1 2").is_err(), "trailing input rejected");
        assert!(parse_expr("DATE '2006-13-99'").is_err());
    }

    #[test]
    fn division_parses() {
        let s = schema();
        let e = parse_expr("7 / 2").unwrap();
        assert_eq!(
            e.eval(&s, &vec![Value::Null; 5]).unwrap(),
            Value::Float(3.5)
        );
    }
}
