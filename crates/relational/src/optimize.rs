//! A conservative logical plan optimizer.
//!
//! Pattern-stack decode rewrites (GUAVA's g-tree → physical translation)
//! mechanically produce towers of Rename/Project/Select nodes with the
//! analyst's predicate sitting at the very top. Because our executor
//! materializes every operator, a top-level selection forces full
//! intermediate tables. The optimizer applies a small set of
//! semantics-preserving rules:
//!
//! * **Select fusion** — `σ_p(σ_q(T)) → σ_{CASE WHEN q THEN p ELSE
//!   FALSE}(T)`. The CASE form (not `q AND p`) is load-bearing: AND
//!   evaluates both operands strictly so that dead-branch errors still
//!   surface, which would run `p` on rows the inner select had already
//!   rejected; CASE arms are lazy, so the fused predicate evaluates `p`
//!   on exactly the rows `q` passes — identical results *and* identical
//!   errors;
//! * **Select past Rename** — rewrite predicate columns through the
//!   inverse renaming and push below. Guarded: a predicate naming a
//!   renamed-away source column is invalid above the rename and stays
//!   unoptimized rather than being silently repaired;
//! * **Select into Project** — substitute the projected expressions into
//!   the predicate and push below. Guarded: only fires when every column
//!   the predicate references is produced by the projection — otherwise
//!   the plan is invalid and pushing the bare unknown name below could
//!   resolve it against the wider input schema, erasing the error;
//! * **Select past Union** — distribute into every branch. Guarded:
//!   union applies the left branch's names to every branch's rows
//!   positionally, so this only fires when each branch's output names
//!   are statically derivable (projection/rename towers, as Merge-decode
//!   produces) and identical across branches;
//! * **Select past Sort** — filter before sorting;
//! * **Project fusion** — collapse `π(π(T))` by substitution, guarded
//!   the same way as Select into Project;
//! * **Identity Rename removal** — only above already-keyless inputs,
//!   because every Rename output is keyless and removing one above e.g.
//!   a Scan would resurrect the scanned table's primary key.
//!
//! Equivalence with the unoptimized plan is property-tested in
//! `tests/pattern_roundtrip.rs` (`optimizer_preserves_decode_semantics`)
//! and, including single-fault error parity across all executor lanes, in
//! `tests/optimize_equivalence.rs`; the win is measured by the
//! `pattern_overhead` benchmark's `pattern_decode_optimized` group.

use crate::algebra::Plan;
use crate::expr::Expr;
use std::collections::BTreeMap;

/// Optimize a plan. Always semantics-preserving; at worst returns an
/// equivalent plan of the same shape.
pub fn optimize(plan: &Plan) -> Plan {
    // Apply rules bottom-up repeatedly until a fixed point (the rule set
    // is size-reducing on the select/project/rename alternation, so this
    // terminates quickly).
    let mut current = rewrite(plan);
    for _ in 0..8 {
        let next = rewrite(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn rewrite(plan: &Plan) -> Plan {
    // First rewrite the children, then the node itself.
    let node = map_children(plan, &rewrite);
    rewrite_node(node)
}

/// Rebuild `plan` with `f` applied to each direct child. Shared with the
/// cost-based layer (`stats::cost`), which composes its own recursion on
/// top of the rule rewrites here.
pub(crate) fn map_children(plan: &Plan, f: &impl Fn(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan(_) | Plan::Values { .. } => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(f(input)),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(f(input)),
            columns: columns.clone(),
        },
        Plan::Rename {
            input,
            table,
            columns,
        } => Plan::Rename {
            input: Box::new(f(input)),
            table: table.clone(),
            columns: columns.clone(),
        },
        Plan::Join {
            left,
            right,
            on,
            kind,
        } => Plan::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            kind: *kind,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.iter().map(f).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(f(input)),
        },
        Plan::Unpivot {
            input,
            keys,
            attr_col,
            val_col,
        } => Plan::Unpivot {
            input: Box::new(f(input)),
            keys: keys.clone(),
            attr_col: attr_col.clone(),
            val_col: val_col.clone(),
        },
        Plan::Pivot {
            input,
            keys,
            attr_col,
            val_col,
            attrs,
        } => Plan::Pivot {
            input: Box::new(f(input)),
            keys: keys.clone(),
            attr_col: attr_col.clone(),
            val_col: val_col.clone(),
            attrs: attrs.clone(),
        },
        Plan::AggregateBy {
            input,
            group_by,
            aggregates,
        } => Plan::AggregateBy {
            input: Box::new(f(input)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(f(input)),
            by: by.clone(),
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(f(input)),
            n: *n,
        },
    }
}

fn rewrite_node(plan: Plan) -> Plan {
    match plan {
        Plan::Select { input, predicate } => push_select(*input, predicate),
        Plan::Project { input, columns } => fuse_project(*input, columns),
        // Identity renames still strip the input's primary key (every
        // Rename output is keyless), so removal is only invisible when
        // the input is already keyless.
        Plan::Rename {
            input,
            table,
            columns,
        } if columns.is_empty() && table.is_none() && static_keyless(&input) => *input,
        other => other,
    }
}

/// Push a selection as far down as the safe rules allow.
fn push_select(input: Plan, predicate: Expr) -> Plan {
    match input {
        // σ_p(σ_q(T)) = σ_{CASE WHEN q THEN p ELSE FALSE}(T). A plain
        // `q AND p` would NOT be equivalent: AND evaluates both operands
        // strictly (so dead-branch errors still surface), which would run
        // `p` on rows the inner select rejected — turning e.g.
        // σ_{ghost ≥ k}(σ_{a ≥ k}(T)) from Ok(empty) into a binding error
        // when no row satisfies `a ≥ k`. CASE arms are lazy: `p` is
        // evaluated exactly on the rows where `q` is TRUE, as in the
        // nested plan, and a FALSE/NULL `q` drops the row via the FALSE
        // default.
        Plan::Select {
            input,
            predicate: inner,
        } => push_select(
            *input,
            Expr::Case {
                arms: vec![(inner, predicate)],
                default: Box::new(Expr::lit(false)),
            },
        ),
        // σ_p(ρ(T)) = ρ(σ_{p'}(T)) with columns mapped back. Not pushed
        // when `p` references a renamed-away source name: such a plan is
        // invalid (the name no longer exists above the rename) and pushing
        // would silently repair it, since the name *does* exist below.
        Plan::Rename {
            input,
            table,
            columns,
        } => {
            let repaired = predicate.referenced_columns().iter().any(|c| {
                columns.iter().any(|(from, _)| from == c) && !columns.iter().any(|(_, to)| to == c)
            });
            if repaired {
                return Plan::Select {
                    input: Box::new(Plan::Rename {
                        input,
                        table,
                        columns,
                    }),
                    predicate,
                };
            }
            let reverse: BTreeMap<&str, &str> = columns
                .iter()
                .map(|(from, to)| (to.as_str(), from.as_str()))
                .collect();
            let mapped = predicate.map_columns(&|c| {
                reverse
                    .get(c)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| c.to_owned())
            });
            Plan::Rename {
                input: Box::new(push_select(*input, mapped)),
                table,
                columns,
            }
        }
        // σ_p(π(T)) = π(σ_{p[cols→exprs]}(T)). Only when every column `p`
        // references is produced by the projection — otherwise the plan is
        // invalid, and substitution would leave the unknown name as a bare
        // reference below the projection, where it may resolve against the
        // wider input schema and erase the error.
        Plan::Project { input, columns } => {
            let by_alias: BTreeMap<&str, &Expr> =
                columns.iter().map(|(a, e)| (a.as_str(), e)).collect();
            if predicate
                .referenced_columns()
                .iter()
                .any(|c| !by_alias.contains_key(c))
            {
                return Plan::Select {
                    input: Box::new(Plan::Project { input, columns }),
                    predicate,
                };
            }
            let substituted = substitute(&predicate, &by_alias);
            Plan::Project {
                input: Box::new(push_select(*input, substituted)),
                columns,
            }
        }
        // σ_p(T1 ∪ T2) = σ_p(T1) ∪ σ_p(T2). Union resolves `p` against the
        // *left* branch's column names but applies it to every branch's
        // rows positionally, so distributing is only sound when each
        // branch demonstrably exposes the same names in the same order —
        // which decode-Merge towers (projections normalizing each vendor
        // branch to the shared logical names) do.
        Plan::Union { inputs } => {
            let names: Option<Vec<Vec<String>>> = inputs.iter().map(static_columns).collect();
            let aligned = names
                .as_ref()
                .is_some_and(|ns| ns.windows(2).all(|w| w[0] == w[1]));
            if aligned {
                Plan::Union {
                    inputs: inputs
                        .into_iter()
                        .map(|p| push_select(p, predicate.clone()))
                        .collect(),
                }
            } else {
                Plan::Select {
                    input: Box::new(Plan::Union { inputs }),
                    predicate,
                }
            }
        }
        // σ_p(sort(T)) = sort(σ_p(T)).
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(push_select(*input, predicate)),
            by,
        },
        // σ_p(δ(T)) = δ(σ_p(T)).
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_select(*input, predicate)),
        },
        other => Plan::Select {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Whether a plan's output schema is statically known to carry no primary
/// key (Rename/Project/Union/Distinct outputs are always keyless;
/// Select/Sort/Limit pass their input's key through).
fn static_keyless(p: &Plan) -> bool {
    match p {
        Plan::Rename { .. } | Plan::Project { .. } | Plan::Union { .. } | Plan::Distinct { .. } => {
            true
        }
        Plan::Select { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            static_keyless(input)
        }
        _ => false,
    }
}

/// Best-effort static output-column names of a plan, without a catalog.
/// `None` when the names depend on a scanned table's schema.
fn static_columns(p: &Plan) -> Option<Vec<String>> {
    match p {
        Plan::Values { schema, .. } => {
            Some(schema.columns().iter().map(|c| c.name.clone()).collect())
        }
        Plan::Project { columns, .. } => Some(columns.iter().map(|(a, _)| a.clone()).collect()),
        Plan::Rename { input, columns, .. } => {
            let mut cols = static_columns(input)?;
            for (from, to) in columns {
                let idx = cols.iter().position(|c| c == from)?;
                cols[idx] = to.clone();
            }
            Some(cols)
        }
        Plan::Select { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input } => static_columns(input),
        _ => None,
    }
}

/// Substitute column references by the expressions a projection binds them
/// to. Callers must ensure every referenced column is bound (see the
/// guards in [`push_select`] and [`fuse_project`]).
fn substitute(e: &Expr, bindings: &BTreeMap<&str, &Expr>) -> Expr {
    match e {
        Expr::Col(c) => bindings
            .get(c.as_str())
            .map(|b| (*b).clone())
            .unwrap_or_else(|| e.clone()),
        Expr::Lit(_) => e.clone(),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute(a, bindings)),
            Box::new(substitute(b, bindings)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(substitute(x, bindings))),
        Expr::Neg(x) => Expr::Neg(Box::new(substitute(x, bindings))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(substitute(x, bindings))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(substitute(x, bindings))),
        Expr::InList(x, vs) => Expr::InList(Box::new(substitute(x, bindings)), vs.clone()),
        Expr::Coalesce(es) => Expr::Coalesce(es.iter().map(|x| substitute(x, bindings)).collect()),
        Expr::Case { arms, default } => Expr::Case {
            arms: arms
                .iter()
                .map(|(c, v)| (substitute(c, bindings), substitute(v, bindings)))
                .collect(),
            default: Box::new(substitute(default, bindings)),
        },
    }
}

/// Collapse `π_outer(π_inner(T))` by substituting inner expressions into
/// the outer ones.
fn fuse_project(input: Plan, outer: Vec<(String, Expr)>) -> Plan {
    match input {
        Plan::Project {
            input: inner_input,
            columns: inner,
        } => {
            let bindings: BTreeMap<&str, &Expr> =
                inner.iter().map(|(a, e)| (a.as_str(), e)).collect();
            // Fusing is only sound when the outer expressions reference
            // nothing but inner aliases; an unbound reference means the
            // plan is invalid, and substitution would leave it as a bare
            // name that may resolve against the inner *input* schema,
            // erasing the error.
            if outer.iter().any(|(_, e)| {
                e.referenced_columns()
                    .iter()
                    .any(|c| !bindings.contains_key(c))
            }) {
                return Plan::Project {
                    input: Box::new(Plan::Project {
                        input: inner_input,
                        columns: inner,
                    }),
                    columns: outer,
                };
            }
            let fused: Vec<(String, Expr)> = outer
                .iter()
                .map(|(alias, e)| (alias.clone(), substitute(e, &bindings)))
                .collect();
            Plan::Project {
                input: inner_input,
                columns: fused,
            }
        }
        other => Plan::Project {
            input: Box::new(other),
            columns: outer,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{Column, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let schema = Schema::new(
            "t",
            vec![
                Column::required("id", DataType::Int),
                Column::new("x", DataType::Int),
                Column::new("b", DataType::Bool),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut d = Database::new("d");
        d.create_table(
            Table::from_rows(
                schema,
                (0..20i64)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            if i % 5 == 0 {
                                Value::Null
                            } else {
                                Value::Int(i)
                            },
                            Value::Bool(i % 2 == 0),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    fn assert_equivalent(plan: &Plan) {
        let d = db();
        let optimized = optimize(plan);
        let mut a = plan.eval(&d).unwrap().into_rows();
        let mut b = optimized.eval(&d).unwrap().into_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b, "optimizer changed semantics of {plan:?}");
    }

    #[test]
    fn select_fusion() {
        let p = Plan::scan("t")
            .select(Expr::col("x").gt(Expr::lit(3i64)))
            .select(Expr::col("b").eq(Expr::lit(true)));
        let o = optimize(&p);
        // One select directly over the scan.
        match &o {
            Plan::Select { input, .. } => assert!(matches!(**input, Plan::Scan(_))),
            other => panic!("expected fused select, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_pushed_past_rename() {
        let p = Plan::scan("t")
            .rename_columns(vec![("x", "renamed_x")])
            .select(Expr::col("renamed_x").gt(Expr::lit(5i64)));
        let o = optimize(&p);
        match &o {
            Plan::Rename { input, .. } => {
                assert!(
                    matches!(**input, Plan::Select { .. }),
                    "select below rename"
                )
            }
            other => panic!("expected rename on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_pushed_into_project() {
        let p = Plan::scan("t")
            .project(vec![
                ("id", Expr::col("id")),
                ("double", Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("double").gt(Expr::lit(10i64)));
        let o = optimize(&p);
        match &o {
            Plan::Project { input, .. } => {
                assert!(
                    matches!(**input, Plan::Select { .. }),
                    "select below project"
                )
            }
            other => panic!("expected project on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_distributed_over_union() {
        // Merge-decode shape: every branch normalized to the same output
        // names by a projection, so distribution is provably name-safe.
        let branch =
            || Plan::scan("t").project(vec![("id", Expr::col("id")), ("b", Expr::col("b"))]);
        let p = Plan::union(vec![branch(), branch()]).select(Expr::col("b").eq(Expr::lit(false)));
        let o = optimize(&p);
        match &o {
            Plan::Union { inputs } => {
                assert!(inputs.iter().all(|i| matches!(i, Plan::Project { .. })))
            }
            other => panic!("expected union on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_not_distributed_over_name_opaque_union() {
        // Bare scans: branch output names are not statically known, so
        // the selection must stay above the union.
        let p = Plan::union(vec![Plan::scan("t"), Plan::scan("t")])
            .select(Expr::col("b").eq(Expr::lit(false)));
        assert!(matches!(optimize(&p), Plan::Select { .. }));
        assert_equivalent(&p);
    }

    #[test]
    fn invalid_plans_stay_invalid() {
        // Each pushdown rule refuses to "repair" a plan that errors: a
        // predicate on a renamed-away name, a predicate on a column the
        // projection dropped, and an outer projection referencing a
        // column the inner projection dropped.
        let d = db();
        let plans = vec![
            Plan::scan("t")
                .rename_columns(vec![("x", "y")])
                .select(Expr::col("x").gt(Expr::lit(1i64))),
            Plan::scan("t")
                .project(vec![("id", Expr::col("id"))])
                .select(Expr::col("x").gt(Expr::lit(1i64))),
            Plan::scan("t")
                .project(vec![("y", Expr::col("x"))])
                .project(vec![("id", Expr::col("id")), ("y", Expr::col("y"))]),
        ];
        for p in plans {
            assert!(p.eval(&d).is_err(), "fixture plan should be invalid: {p:?}");
            assert!(
                optimize(&p).eval(&d).is_err(),
                "optimizer repaired an invalid plan: {p:?}"
            );
        }
    }

    #[test]
    fn project_fusion() {
        let p = Plan::scan("t")
            .project(vec![("y", Expr::col("x").add(Expr::lit(1i64)))])
            .project(vec![("z", Expr::col("y").mul(Expr::lit(3i64)))]);
        let o = optimize(&p);
        match &o {
            Plan::Project { input, columns } => {
                assert!(matches!(**input, Plan::Scan(_)), "single fused projection");
                assert_eq!(columns.len(), 1);
                assert_eq!(columns[0].0, "z");
            }
            other => panic!("expected fused project, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn identity_rename_removed() {
        // Above a keyless input the identity rename is invisible and
        // removed; above a scan it still strips the table's primary key
        // and must stay.
        let keyless = Plan::Rename {
            input: Box::new(Plan::scan("t").project(vec![("id", Expr::col("id"))])),
            table: None,
            columns: vec![],
        };
        assert!(matches!(optimize(&keyless), Plan::Project { .. }));
        let keyed = Plan::Rename {
            input: Box::new(Plan::scan("t")),
            table: None,
            columns: vec![],
        };
        assert_eq!(optimize(&keyed), keyed);
    }

    #[test]
    fn deep_tower_collapses() {
        // The shape decode plans produce: select over rename over project
        // over select over scan.
        let p = Plan::scan("t")
            .select(Expr::col("x").is_not_null())
            .project(vec![("id", Expr::col("id")), ("x", Expr::col("x"))])
            .rename_columns(vec![("x", "packs")])
            .select(Expr::col("packs").ge(Expr::lit(4i64)));
        assert_equivalent(&p);
        // The optimized plan evaluates the filter before projecting.
        let o = optimize(&p);
        fn select_depth(p: &Plan) -> usize {
            match p {
                Plan::Select { input, .. } => 1 + select_depth(input),
                Plan::Project { input, .. }
                | Plan::Rename { input, .. }
                | Plan::Sort { input, .. } => select_depth(input),
                _ => 0,
            }
        }
        assert_eq!(select_depth(&o), 1, "both selects fused below: {o:?}");
    }

    #[test]
    fn aggregates_and_joins_left_untouched() {
        use crate::algebra::{AggFunc, Aggregate, JoinKind};
        let p = Plan::scan("t")
            .join(Plan::scan("t"), vec![("id", "id")], JoinKind::Inner)
            .aggregate(
                &[],
                vec![Aggregate {
                    func: AggFunc::CountAll,
                    alias: "n".into(),
                }],
            );
        assert_eq!(optimize(&p), p, "no rule applies; plan unchanged");
    }
}
