//! A conservative logical plan optimizer.
//!
//! Pattern-stack decode rewrites (GUAVA's g-tree → physical translation)
//! mechanically produce towers of Rename/Project/Select nodes with the
//! analyst's predicate sitting at the very top. Because our executor
//! materializes every operator, a top-level selection forces full
//! intermediate tables. The optimizer applies a small set of
//! semantics-preserving rules:
//!
//! * **Select fusion** — `σ_p(σ_q(T)) → σ_{q AND p}(T)`;
//! * **Select past Rename** — rewrite predicate columns through the
//!   inverse renaming and push below;
//! * **Select into Project** — substitute the projected expressions into
//!   the predicate and push below (legal because projection already
//!   evaluates those expressions for every row, so error behaviour is
//!   unchanged);
//! * **Select past Union** — distribute into every branch;
//! * **Select past Sort** — filter before sorting;
//! * **Project fusion** — collapse `π(π(T))` by substitution;
//! * **Identity Rename removal**.
//!
//! Equivalence with the unoptimized plan is property-tested in
//! `tests/pattern_roundtrip.rs` (`optimizer_preserves_decode_semantics`), and the win is measured by the
//! `pattern_overhead` benchmark's `pattern_decode_optimized` group.

use crate::algebra::Plan;
use crate::expr::Expr;
use std::collections::BTreeMap;

/// Optimize a plan. Always semantics-preserving; at worst returns an
/// equivalent plan of the same shape.
pub fn optimize(plan: &Plan) -> Plan {
    // Apply rules bottom-up repeatedly until a fixed point (the rule set
    // is size-reducing on the select/project/rename alternation, so this
    // terminates quickly).
    let mut current = rewrite(plan);
    for _ in 0..8 {
        let next = rewrite(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn rewrite(plan: &Plan) -> Plan {
    // First rewrite the children, then the node itself.
    let node = map_children(plan, &rewrite);
    rewrite_node(node)
}

fn map_children(plan: &Plan, f: &impl Fn(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan(_) | Plan::Values { .. } => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(f(input)),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(f(input)),
            columns: columns.clone(),
        },
        Plan::Rename {
            input,
            table,
            columns,
        } => Plan::Rename {
            input: Box::new(f(input)),
            table: table.clone(),
            columns: columns.clone(),
        },
        Plan::Join {
            left,
            right,
            on,
            kind,
        } => Plan::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            kind: *kind,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.iter().map(f).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(f(input)),
        },
        Plan::Unpivot {
            input,
            keys,
            attr_col,
            val_col,
        } => Plan::Unpivot {
            input: Box::new(f(input)),
            keys: keys.clone(),
            attr_col: attr_col.clone(),
            val_col: val_col.clone(),
        },
        Plan::Pivot {
            input,
            keys,
            attr_col,
            val_col,
            attrs,
        } => Plan::Pivot {
            input: Box::new(f(input)),
            keys: keys.clone(),
            attr_col: attr_col.clone(),
            val_col: val_col.clone(),
            attrs: attrs.clone(),
        },
        Plan::AggregateBy {
            input,
            group_by,
            aggregates,
        } => Plan::AggregateBy {
            input: Box::new(f(input)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(f(input)),
            by: by.clone(),
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(f(input)),
            n: *n,
        },
    }
}

fn rewrite_node(plan: Plan) -> Plan {
    match plan {
        Plan::Select { input, predicate } => push_select(*input, predicate),
        Plan::Project { input, columns } => fuse_project(*input, columns),
        Plan::Rename {
            input,
            table,
            columns,
        } if columns.is_empty() && table.is_none() => *input,
        other => other,
    }
}

/// Push a selection as far down as the safe rules allow.
fn push_select(input: Plan, predicate: Expr) -> Plan {
    match input {
        // σ_p(σ_q(T)) = σ_{q AND p}(T) — q first preserves evaluation
        // order for error behaviour.
        Plan::Select {
            input,
            predicate: inner,
        } => push_select(*input, inner.and(predicate)),
        // σ_p(ρ(T)) = ρ(σ_{p'}(T)) with columns mapped back.
        Plan::Rename {
            input,
            table,
            columns,
        } => {
            let reverse: BTreeMap<&str, &str> = columns
                .iter()
                .map(|(from, to)| (to.as_str(), from.as_str()))
                .collect();
            let mapped = predicate.map_columns(&|c| {
                reverse
                    .get(c)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| c.to_owned())
            });
            Plan::Rename {
                input: Box::new(push_select(*input, mapped)),
                table,
                columns,
            }
        }
        // σ_p(π(T)) = π(σ_{p[cols→exprs]}(T)).
        Plan::Project { input, columns } => {
            let by_alias: BTreeMap<&str, &Expr> =
                columns.iter().map(|(a, e)| (a.as_str(), e)).collect();
            // Only safe when every referenced column is produced by the
            // projection (it must be, for the original plan to be valid).
            let substituted = substitute(&predicate, &by_alias);
            Plan::Project {
                input: Box::new(push_select(*input, substituted)),
                columns,
            }
        }
        // σ_p(T1 ∪ T2) = σ_p(T1) ∪ σ_p(T2).
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| push_select(p, predicate.clone()))
                .collect(),
        },
        // σ_p(sort(T)) = sort(σ_p(T)).
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(push_select(*input, predicate)),
            by,
        },
        // σ_p(δ(T)) = δ(σ_p(T)).
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_select(*input, predicate)),
        },
        other => Plan::Select {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Substitute column references by the expressions a projection binds them
/// to. Unknown columns stay as references (callers guarantee validity).
fn substitute(e: &Expr, bindings: &BTreeMap<&str, &Expr>) -> Expr {
    match e {
        Expr::Col(c) => bindings
            .get(c.as_str())
            .map(|b| (*b).clone())
            .unwrap_or_else(|| e.clone()),
        Expr::Lit(_) => e.clone(),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute(a, bindings)),
            Box::new(substitute(b, bindings)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(substitute(x, bindings))),
        Expr::Neg(x) => Expr::Neg(Box::new(substitute(x, bindings))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(substitute(x, bindings))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(substitute(x, bindings))),
        Expr::InList(x, vs) => Expr::InList(Box::new(substitute(x, bindings)), vs.clone()),
        Expr::Coalesce(es) => Expr::Coalesce(es.iter().map(|x| substitute(x, bindings)).collect()),
        Expr::Case { arms, default } => Expr::Case {
            arms: arms
                .iter()
                .map(|(c, v)| (substitute(c, bindings), substitute(v, bindings)))
                .collect(),
            default: Box::new(substitute(default, bindings)),
        },
    }
}

/// Collapse `π_outer(π_inner(T))` by substituting inner expressions into
/// the outer ones.
fn fuse_project(input: Plan, outer: Vec<(String, Expr)>) -> Plan {
    match input {
        Plan::Project {
            input: inner_input,
            columns: inner,
        } => {
            let bindings: BTreeMap<&str, &Expr> =
                inner.iter().map(|(a, e)| (a.as_str(), e)).collect();
            let fused: Vec<(String, Expr)> = outer
                .iter()
                .map(|(alias, e)| (alias.clone(), substitute(e, &bindings)))
                .collect();
            Plan::Project {
                input: inner_input,
                columns: fused,
            }
        }
        other => Plan::Project {
            input: Box::new(other),
            columns: outer,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{Column, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let schema = Schema::new(
            "t",
            vec![
                Column::required("id", DataType::Int),
                Column::new("x", DataType::Int),
                Column::new("b", DataType::Bool),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut d = Database::new("d");
        d.create_table(
            Table::from_rows(
                schema,
                (0..20i64)
                    .map(|i| {
                        vec![
                            Value::Int(i),
                            if i % 5 == 0 {
                                Value::Null
                            } else {
                                Value::Int(i)
                            },
                            Value::Bool(i % 2 == 0),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    fn assert_equivalent(plan: &Plan) {
        let d = db();
        let optimized = optimize(plan);
        let mut a = plan.eval(&d).unwrap().into_rows();
        let mut b = optimized.eval(&d).unwrap().into_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b, "optimizer changed semantics of {plan:?}");
    }

    #[test]
    fn select_fusion() {
        let p = Plan::scan("t")
            .select(Expr::col("x").gt(Expr::lit(3i64)))
            .select(Expr::col("b").eq(Expr::lit(true)));
        let o = optimize(&p);
        // One select directly over the scan.
        match &o {
            Plan::Select { input, .. } => assert!(matches!(**input, Plan::Scan(_))),
            other => panic!("expected fused select, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_pushed_past_rename() {
        let p = Plan::scan("t")
            .rename_columns(vec![("x", "renamed_x")])
            .select(Expr::col("renamed_x").gt(Expr::lit(5i64)));
        let o = optimize(&p);
        match &o {
            Plan::Rename { input, .. } => {
                assert!(
                    matches!(**input, Plan::Select { .. }),
                    "select below rename"
                )
            }
            other => panic!("expected rename on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_pushed_into_project() {
        let p = Plan::scan("t")
            .project(vec![
                ("id", Expr::col("id")),
                ("double", Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("double").gt(Expr::lit(10i64)));
        let o = optimize(&p);
        match &o {
            Plan::Project { input, .. } => {
                assert!(
                    matches!(**input, Plan::Select { .. }),
                    "select below project"
                )
            }
            other => panic!("expected project on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn select_distributed_over_union() {
        let p = Plan::union(vec![Plan::scan("t"), Plan::scan("t")])
            .select(Expr::col("b").eq(Expr::lit(false)));
        let o = optimize(&p);
        match &o {
            Plan::Union { inputs } => {
                assert!(inputs.iter().all(|i| matches!(i, Plan::Select { .. })))
            }
            other => panic!("expected union on top, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn project_fusion() {
        let p = Plan::scan("t")
            .project(vec![("y", Expr::col("x").add(Expr::lit(1i64)))])
            .project(vec![("z", Expr::col("y").mul(Expr::lit(3i64)))]);
        let o = optimize(&p);
        match &o {
            Plan::Project { input, columns } => {
                assert!(matches!(**input, Plan::Scan(_)), "single fused projection");
                assert_eq!(columns.len(), 1);
                assert_eq!(columns[0].0, "z");
            }
            other => panic!("expected fused project, got {other:?}"),
        }
        assert_equivalent(&p);
    }

    #[test]
    fn identity_rename_removed() {
        let p = Plan::Rename {
            input: Box::new(Plan::scan("t")),
            table: None,
            columns: vec![],
        };
        assert!(matches!(optimize(&p), Plan::Scan(_)));
    }

    #[test]
    fn deep_tower_collapses() {
        // The shape decode plans produce: select over rename over project
        // over select over scan.
        let p = Plan::scan("t")
            .select(Expr::col("x").is_not_null())
            .project(vec![("id", Expr::col("id")), ("x", Expr::col("x"))])
            .rename_columns(vec![("x", "packs")])
            .select(Expr::col("packs").ge(Expr::lit(4i64)));
        assert_equivalent(&p);
        // The optimized plan evaluates the filter before projecting.
        let o = optimize(&p);
        fn select_depth(p: &Plan) -> usize {
            match p {
                Plan::Select { input, .. } => 1 + select_depth(input),
                Plan::Project { input, .. }
                | Plan::Rename { input, .. }
                | Plan::Sort { input, .. } => select_depth(input),
                _ => 0,
            }
        }
        assert_eq!(select_depth(&o), 1, "both selects fused below: {o:?}");
    }

    #[test]
    fn aggregates_and_joins_left_untouched() {
        use crate::algebra::{AggFunc, Aggregate, JoinKind};
        let p = Plan::scan("t")
            .join(Plan::scan("t"), vec![("id", "id")], JoinKind::Inner)
            .aggregate(
                &[],
                vec![Aggregate {
                    func: AggFunc::CountAll,
                    alias: "n".into(),
                }],
            );
        assert_eq!(optimize(&p), p, "no rule applies; plan unchanged");
    }
}
