//! Table schemas: named, typed, nullable columns plus an optional primary
//! key. Contributor databases in the paper range from clean per-form tables
//! (the "naïve schema") to generic Entity–Attribute–Value layouts; both are
//! described with the same schema machinery.

use crate::error::{RelError, RelResult};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    /// A nullable column — the common case for clinical form fields, which
    /// are unanswered until a provider fills them in.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL column (identifiers, audit sentinels).
    pub fn required(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// Check that `value` may be stored in this column.
    pub fn check(&self, value: &Value) -> RelResult<()> {
        match value.data_type() {
            None if self.nullable => Ok(()),
            None => Err(RelError::NullViolation(self.name.clone())),
            Some(t) if self.data_type.accepts(t) => Ok(()),
            Some(t) => Err(RelError::TypeMismatch {
                column: self.name.clone(),
                expected: self.data_type,
                got: Some(t),
            }),
        }
    }
}

/// Schema of a table: ordered columns and an optional primary key (column
/// indexes). Column names are unique (case-sensitive).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    columns: Vec<Column>,
    /// Indexes into `columns` forming the primary key, empty = no key.
    primary_key: Vec<usize>,
}

impl Schema {
    /// Build a schema, validating column-name uniqueness.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> RelResult<Schema> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(RelError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema {
            name,
            columns,
            primary_key: Vec::new(),
        })
    }

    /// Declare the primary key by column names. Key columns become NOT NULL.
    pub fn with_primary_key(mut self, key: &[&str]) -> RelResult<Schema> {
        let mut pk = Vec::with_capacity(key.len());
        for k in key {
            let idx = self.index_of(k).ok_or_else(|| RelError::UnknownColumn {
                table: self.name.clone(),
                column: (*k).to_owned(),
            })?;
            self.columns[idx].nullable = false;
            pk.push(idx);
        }
        self.primary_key = pk;
        Ok(self)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column by name, with a table-qualified error on miss.
    pub fn column(&self, name: &str) -> RelResult<&Column> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| RelError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validate a full row against this schema (arity, types, nullability).
    pub fn check_row(&self, row: &[Value]) -> RelResult<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (c, v) in self.columns.iter().zip(row) {
            c.check(v)?;
        }
        Ok(())
    }

    /// Two schemas are *union-compatible* when their column types align
    /// positionally (names may differ — the left schema's names win).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.data_type == b.data_type)
    }

    /// A renamed copy (used by `Rename` plan nodes and temporary tables).
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            ..self.clone()
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if !c.nullable {
                f.write_str(" NOT NULL")?;
            }
        }
        if !self.primary_key.is_empty() {
            let keys: Vec<&str> = self
                .primary_key
                .iter()
                .map(|&i| self.columns[i].name.as_str())
                .collect();
            write!(f, ", PRIMARY KEY({})", keys.join(", "))?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::new(
            "procedures",
            vec![
                Column::required("id", DataType::Int),
                Column::new("smoker", DataType::Bool),
                Column::new("packs_per_day", DataType::Float),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap()
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("a", DataType::Text),
            ],
        )
        .unwrap_err();
        assert_eq!(err, RelError::DuplicateColumn("a".into()));
    }

    #[test]
    fn primary_key_resolves_and_forces_not_null() {
        let s = demo();
        assert_eq!(s.primary_key(), &[0]);
        assert!(!s.columns()[0].nullable);
    }

    #[test]
    fn unknown_pk_column_rejected() {
        let err = Schema::new("t", vec![Column::new("a", DataType::Int)])
            .unwrap()
            .with_primary_key(&["nope"])
            .unwrap_err();
        assert!(matches!(err, RelError::UnknownColumn { .. }));
    }

    #[test]
    fn check_row_validates_arity_types_nulls() {
        let s = demo();
        assert!(s
            .check_row(&[Value::Int(1), Value::Bool(true), Value::Float(0.5)])
            .is_ok());
        // Int widens into the Float column.
        assert!(s
            .check_row(&[Value::Int(1), Value::Null, Value::Int(2)])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::Bool(true)]),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Null, Value::Null, Value::Null]),
            Err(RelError::NullViolation(_))
        ));
        assert!(matches!(
            s.check_row(&[Value::Int(1), Value::text("yes"), Value::Null]),
            Err(RelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn union_compatibility_is_positional_by_type() {
        let a = demo();
        let b = Schema::new(
            "other",
            vec![
                Column::new("key", DataType::Int),
                Column::new("flag", DataType::Bool),
                Column::new("x", DataType::Float),
            ],
        )
        .unwrap();
        assert!(a.union_compatible(&b));
        let c = Schema::new("c", vec![Column::new("key", DataType::Text)]).unwrap();
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn display_renders_ddl_like() {
        let s = demo().to_string();
        assert!(s.contains("procedures("));
        assert!(s.contains("id INT NOT NULL"));
        assert!(s.contains("PRIMARY KEY(id)"));
    }
}
