//! Columnar resting storage: immutable, typed column segments.
//!
//! A [`Segment`] is a sealed, immutable window of a table's rows stored
//! column-major: one typed vector per column plus a parallel validity
//! (null) mask, a per-column [`ZoneMap`] (min/max/null statistics), and —
//! for text columns of modest cardinality — dictionary encoding. A
//! [`SegmentList`] is the sealed prefix of a table: a run of segments
//! covering rows `0..covered`, with any rows past `covered` living in the
//! table's row-form delta store until the next compaction
//! ([`crate::table::Table::compact_segments`]).
//!
//! Segments are what make typed column lanes the *resting* format: the
//! vectorized executor slices its [`exec`](crate::exec) lanes directly out
//! of segment storage (zero per-batch shredding) and consults zone maps to
//! skip whole segments before a batch is ever formed (DESIGN.md §14).
//!
//! ## Storage contract
//!
//! Column storage is guided by the *declared* type, mirroring the
//! executor's shredding rule: a column stores typed vectors only when
//! every non-null value is exactly of the declared variant; otherwise it
//! falls back to [`ColumnData::Mixed`] row-major values (this is how FLOAT
//! columns holding widened INTs stay lossless). Text columns
//! dictionary-encode when the segment has at most [`DICT_MAX`] distinct
//! strings and fall back to plain string storage above that.
//!
//! ## Zone-map contract
//!
//! `min`/`max` are the extrema of the column's non-null values under
//! [`Value::total_cmp`] (so NaN sorts above all numbers and `-0.0` below
//! `0.0`), `Value::Null` when the segment window has no non-null values.
//! `has_nan` records whether any float value is NaN; scan pruning uses it
//! to refuse ordering-predicate skips that could suppress the row
//! kernels' "cannot compare" errors.

use crate::schema::Schema;
use crate::stats::DistinctSketch;
use crate::table::Row;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Target row count per sealed segment. Large enough that per-segment
/// bookkeeping (zone maps, dictionary headers, per-segment pipeline
/// entry) is noise, small enough that zone maps retain pruning power on
/// clustered data.
pub const SEGMENT_ROWS: usize = 32_768;

/// Maximum distinct strings a segment's text column may hold and still
/// dictionary-encode; above this the column stores plain strings.
pub const DICT_MAX: usize = 1_024;

/// Typed column storage inside a [`Segment`]. Typed variants hold one
/// entry per row with nulls masked out-of-band (the slot holds a default);
/// [`ColumnData::Mixed`] is the lossless fallback for columns whose values
/// are not uniformly of the declared type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// INT column: `i64` per row.
    Int(Vec<i64>),
    /// FLOAT column: `f64` per row.
    Float(Vec<f64>),
    /// BOOL column: `bool` per row.
    Bool(Vec<bool>),
    /// DATE column: days since the Unix epoch per row.
    Date(Vec<i64>),
    /// TEXT column above [`DICT_MAX`] distinct values: plain strings.
    Str(Vec<String>),
    /// Dictionary-encoded TEXT column: `codes[i]` indexes into `dict`
    /// (null rows carry code 0 and are masked by the null mask). `dict`
    /// is ordered by first appearance.
    Dict {
        /// Per-row dictionary code.
        codes: Vec<u32>,
        /// Distinct strings, indexed by code.
        dict: Vec<String>,
    },
    /// Non-conforming column (e.g. INTs widened into a FLOAT column):
    /// row-major values, read back exactly as stored.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Human-readable encoding name, for stats and tests.
    pub fn encoding(&self) -> &'static str {
        match self {
            ColumnData::Int(_) => "int",
            ColumnData::Float(_) => "float",
            ColumnData::Bool(_) => "bool",
            ColumnData::Date(_) => "date",
            ColumnData::Str(_) => "str",
            ColumnData::Dict { .. } => "dict",
            ColumnData::Mixed(_) => "mixed",
        }
    }
}

/// Per-segment, per-column min/max statistics consulted by scan pruning.
/// See the module docs for the exact contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Least non-null value under [`Value::total_cmp`]; `Null` if none.
    pub min: Value,
    /// Greatest non-null value under [`Value::total_cmp`]; `Null` if none.
    pub max: Value,
    /// Number of null rows in the segment window.
    pub null_count: usize,
    /// Whether any float value in the window is NaN. Ordering predicates
    /// error on NaN in the row kernels, so pruning must not skip segments
    /// that would have raised that error.
    pub has_nan: bool,
}

/// One column of a [`Segment`]: typed storage, a validity mask, and the
/// zone map.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentColumn {
    pub(crate) data: ColumnData,
    /// `true` where the row is NULL (parallel to `data`).
    pub(crate) nulls: Vec<bool>,
    pub(crate) zone: ZoneMap,
    /// Distinct-value sketch over the segment's non-null values, built in
    /// the same sealing pass as the zone map and merged table-wide by the
    /// statistics catalog ([`crate::stats::TableStats::from_table`]).
    pub(crate) ndv: DistinctSketch,
}

impl SegmentColumn {
    /// The column's zone map.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// The column's distinct-value sketch (non-null values only).
    pub fn ndv_sketch(&self) -> &DistinctSketch {
        &self.ndv
    }

    /// The column's storage encoding (`"dict"`, `"mixed"`, ...).
    pub fn encoding(&self) -> &'static str {
        self.data.encoding()
    }

    fn build(decl: DataType, rows: &[Row], col: usize) -> SegmentColumn {
        let mut nulls = Vec::with_capacity(rows.len());
        let mut zone = ZoneMap {
            min: Value::Null,
            max: Value::Null,
            null_count: 0,
            has_nan: false,
        };
        let mut ndv = DistinctSketch::new();
        for row in rows {
            let v = &row[col];
            nulls.push(v.is_null());
            if v.is_null() {
                zone.null_count += 1;
                continue;
            }
            ndv.insert(v);
            if let Value::Float(f) = v {
                zone.has_nan |= f.is_nan();
            }
            if zone.min.is_null() || v.total_cmp(&zone.min).is_lt() {
                zone.min = v.clone();
            }
            if zone.max.is_null() || v.total_cmp(&zone.max).is_gt() {
                zone.max = v.clone();
            }
        }
        let data = Self::build_data(decl, rows, col)
            .unwrap_or_else(|| ColumnData::Mixed(rows.iter().map(|r| r[col].clone()).collect()));
        SegmentColumn {
            data,
            nulls,
            zone,
            ndv,
        }
    }

    /// Typed storage for the declared type, or `None` when some non-null
    /// value is not exactly of the declared variant (the `Mixed` fallback
    /// mirrors `build_lane`'s demotion to the row lane).
    fn build_data(decl: DataType, rows: &[Row], col: usize) -> Option<ColumnData> {
        macro_rules! typed {
            ($variant:ident, $pat:pat => $val:expr, $default:expr) => {{
                let mut vals = Vec::with_capacity(rows.len());
                for row in rows {
                    match &row[col] {
                        Value::Null => vals.push($default),
                        $pat => vals.push($val),
                        _ => return None,
                    }
                }
                Some(ColumnData::$variant(vals))
            }};
        }
        match decl {
            DataType::Int => typed!(Int, Value::Int(i) => *i, 0),
            DataType::Float => typed!(Float, Value::Float(f) => *f, 0.0),
            DataType::Bool => typed!(Bool, Value::Bool(b) => *b, false),
            DataType::Date => typed!(Date, Value::Date(d) => *d, 0),
            DataType::Text => Self::build_text(rows, col),
        }
    }

    /// Dictionary-encode a text column, falling back to plain strings
    /// past [`DICT_MAX`] distinct values and to `None` (mixed) when a
    /// non-null value is not text.
    fn build_text(rows: &[Row], col: usize) -> Option<ColumnData> {
        let mut codes = Vec::with_capacity(rows.len());
        let mut dict: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        for row in rows {
            match &row[col] {
                Value::Null => codes.push(0),
                Value::Text(s) => {
                    if let Some(&c) = index.get(s.as_str()) {
                        codes.push(c);
                    } else {
                        if dict.len() >= DICT_MAX {
                            // Overflow: re-collect as plain strings.
                            return Self::build_plain_text(rows, col);
                        }
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        index.insert(s.clone(), c);
                        codes.push(c);
                    }
                }
                _ => return None,
            }
        }
        Some(ColumnData::Dict { codes, dict })
    }

    fn build_plain_text(rows: &[Row], col: usize) -> Option<ColumnData> {
        let mut vals = Vec::with_capacity(rows.len());
        for row in rows {
            match &row[col] {
                Value::Null => vals.push(String::new()),
                Value::Text(s) => vals.push(s.clone()),
                _ => return None,
            }
        }
        Some(ColumnData::Str(vals))
    }

    /// Read one value back, exactly as the row stored it.
    pub fn value(&self, i: usize) -> Value {
        if self.nulls[i] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(v) => Value::Text(v[i].clone()),
            ColumnData::Dict { codes, dict } => Value::Text(dict[codes[i] as usize].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

/// An immutable columnar window of a table's rows. Built once, then
/// shared (`Arc`) between the owning table and any scans in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    len: usize,
    cols: Vec<SegmentColumn>,
}

impl Segment {
    /// Seal `rows` (one table window) into a columnar segment.
    pub fn build(schema: &Schema, rows: &[Row]) -> Segment {
        let cols = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(c, col)| SegmentColumn::build(col.data_type, rows, c))
            .collect();
        Segment {
            len: rows.len(),
            cols,
        }
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The column at position `c`.
    pub fn column(&self, c: usize) -> &SegmentColumn {
        &self.cols[c]
    }

    /// The zone map for column `c`.
    pub fn zone(&self, c: usize) -> &ZoneMap {
        &self.cols[c].zone
    }
}

/// The sealed prefix of a table: segments covering rows `0..covered`, in
/// row order. Rows at and past `covered` are the table's row-form delta
/// store, scanned row-major until compaction folds them into new
/// segments.
#[derive(Debug, Clone)]
pub struct SegmentList {
    segments: Vec<Arc<Segment>>,
    covered: usize,
}

impl SegmentList {
    /// Seal all of `rows` into segments of [`SEGMENT_ROWS`].
    pub fn build(schema: &Schema, rows: &[Row]) -> SegmentList {
        SegmentList::sealed_over(schema, rows, Vec::new(), 0)
    }

    /// A new list reusing this list's sealed segments and sealing
    /// `rows[covered..]` (the delta tail) into fresh ones.
    pub fn extended(&self, schema: &Schema, rows: &[Row]) -> SegmentList {
        SegmentList::sealed_over(schema, rows, self.segments.clone(), self.covered)
    }

    fn sealed_over(
        schema: &Schema,
        rows: &[Row],
        mut segments: Vec<Arc<Segment>>,
        from: usize,
    ) -> SegmentList {
        for chunk in rows[from..].chunks(SEGMENT_ROWS) {
            segments.push(Arc::new(Segment::build(schema, chunk)));
        }
        SegmentList {
            segments,
            covered: rows.len(),
        }
    }

    /// The sealed segments, in row order.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Number of leading table rows covered by sealed segments.
    pub fn covered(&self) -> usize {
        self.covered
    }
}
