//! Push-based batch executor: the physical execution layer behind
//! [`Plan::eval`].
//!
//! The logical algebra in [`crate::algebra`] can be interpreted
//! operator-at-a-time by [`Plan::eval_materialized`], which builds a full
//! [`Table`] at every node — simple and obviously correct, but each
//! operator re-validates and re-allocates every intermediate row. This
//! module compiles the same plans into a tree of **push-based physical
//! operators** (see `exec::ops`): one `PhysicalOperator` trait with
//! `open` / `push_batch` / `finish`, one columnar `Batch` currency
//! flowing between all operators, and one driver that walks the tree
//! bottom-up, exhausting each child in order before finishing the parent.
//!
//! * **Scans are zero-copy.** A scan compiles to a leaf holding the
//!   table's `Arc`-shared row storage (see [`Table::shared_rows`]); it
//!   enters the tree as a single shared-window batch, and rows are cloned
//!   only when they survive to an owned output batch.
//! * **Select / Project / Rename chains fuse** into a single pipeline
//!   operator: a row flows through every predicate and projection before
//!   the next row is touched, with no intermediate tables. Rename is free
//!   — it only rewrites the schema at compile time.
//! * **Union forwards** batches in child order; **Join** builds a hash
//!   index over its build side (driven first) and probes batch-by-batch;
//!   **Distinct** forwards first occurrences as input arrives.
//! * The inherently blocking operators — Pivot, AggregateBy, Sort —
//!   buffer their input batches (still zero-copy for a bare scan) and run
//!   their kernel in `finish`.
//!
//! Mode and parallelism selection is **per operator**: each operator holds
//! the session [`ExecConfig`] and dispatches each batch to its
//! row-streaming kernel, its columnar lane kernel (`exec::vector` for
//! fused pipelines, `exec::blocking` for join/aggregate/pivot/sort), or
//! the morsel-parallel variant (`exec::morsel`). There is exactly one
//! operator tree shape regardless of mode — the old per-mode executors
//! collapsed into this layer.
//!
//! Compilation ("binding") resolves every schema and column position up
//! front, so schema-level errors — unknown tables or columns, incompatible
//! unions, duplicate output columns — surface before any data flows.
//! Data-dependent errors (expression evaluation, EAV cast failures)
//! surface in row order as batches are pushed. For plans with a single
//! fault this reproduces the materializing interpreter's error exactly;
//! when a plan contains several independent faults the two evaluators may
//! report different ones (both still fail). `tests/algebra_properties.rs`
//! cross-validates the evaluators on random plans.
//!
//! # Parallel execution
//!
//! Large inputs take a **morsel-parallel** path (see [`morsel`]): shared
//! scan storage is split into fixed-size row ranges and a small
//! work-stealing scheduler runs the fused pipeline — or a join build /
//! probe, aggregation, pivot, sort, or union-check kernel — over the
//! morsels on scoped threads, merging per-morsel results strictly in
//! morsel-index order. That merge rule, together with
//! thread-count-independent morsel boundaries, makes parallel output
//! **byte-identical** to serial output at any thread count; errors keep
//! row order because the lowest-index failing morsel wins. The choice
//! between the serial and parallel path is made per operator by
//! [`ExecConfig`]: inputs below [`ExecConfig::parallel_threshold`] stay
//! serial, and the [`GUAVA_EXEC_THREADS`](THREADS_ENV) environment
//! variable (or an explicit config passed to [`execute_with`] /
//! `Plan::eval_with`) overrides the thread count — `1` forces the serial
//! path everywhere. SUM/AVG over FLOAT columns always run serially: `f64`
//! addition is not associative, and bit-for-bit agreement with the serial
//! kernel matters more than parallel speedup there.
//!
//! # Execution modes and the `Executor` session API
//!
//! [`Executor`] is the single entry point tying the knobs together: a
//! builder over [`ExecConfig`] whose [`ExecMode`] picks the evaluation
//! strategy. [`ExecMode::Vectorized`] (the default) shreds batches into
//! typed per-column lanes with null masks (see `exec::batch`): fused
//! Select/Project chains run the columnar expression kernels of
//! `exec::vector` — threading computed output lanes into the next epoch —
//! and the blocking operators run the lane kernels of `exec::blocking`
//! (hashed key lanes for join build/probe, distinct, and grouping; typed
//! accumulator lanes for aggregation; lane-driven slot filling for pivot;
//! columnar sort keys with a parallel merge-path kernel for sort).
//! Expressions outside the kernel catalog (`CASE`, `COALESCE`, unknown
//! columns) and non-conforming storage fall back to row-at-a-time
//! evaluation with byte-identical results and error parity (see
//! `exec::vector` and DESIGN.md §11–13). [`ExecMode::Streaming`] forces
//! the row-at-a-time kernels everywhere; [`ExecMode::Materialized`]
//! routes to the operator-at-a-time reference interpreter. All three
//! modes produce identical tables and errors; `tests/algebra_properties.rs`
//! holds them to that on random plans.

mod batch;
mod blocking;
pub mod morsel;
mod ops;
mod vector;

use crate::algebra::{
    aggregate_output_schema, check_union_compatible, join_output_schema, keyless,
    pivot_output_schema, project_output_schema, rename_output_schema, resolve_aggregate_columns,
    resolve_column, resolve_columns, unpivot_output_schema, AggFunc, Plan,
};
use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::expr::{BinOp, Expr};
use crate::schema::Schema;
use crate::segment::{ColumnData, Segment};
use crate::table::{Row, Table};
use crate::value::{DataType, Value};

/// Target number of rows per batch. Large enough to amortize per-batch
/// dispatch, small enough that a pipeline's working set stays cache-sized.
pub const BATCH_SIZE: usize = 1024;

/// Environment variable overriding the executor's thread count.
///
/// `GUAVA_EXEC_THREADS=1` forces the serial path everywhere; any larger
/// value enables the morsel-parallel path with that many workers for
/// inputs above the cardinality threshold. Unset, empty, or `0` fall back
/// to the host's available parallelism; anything else that does not parse
/// as a thread count is a hard [`RelError::Plan`] error — a typo here
/// should not silently change how plans execute. The variable is re-read
/// on every [`execute`] call, so tests can flip it at run time; code that
/// needs a fixed configuration should call [`execute_with`] (or
/// `Plan::eval_with`) instead of mutating the process environment.
///
/// [`ExecConfig::from_env`] is the one place this variable (and
/// [`MODE_ENV`]) is read.
pub const THREADS_ENV: &str = "GUAVA_EXEC_THREADS";

/// Environment variable overriding the executor's [`ExecMode`].
///
/// Accepts `streaming`, `vectorized`, or `materialized`
/// (case-insensitive); unset or empty keeps the default
/// ([`ExecMode::Vectorized`]), and any other value is a hard
/// [`RelError::Plan`] error. Read only by [`ExecConfig::from_env`],
/// alongside [`THREADS_ENV`].
pub const MODE_ENV: &str = "GUAVA_EXEC_MODE";

/// Environment variable overriding the executor's [`StorageMode`].
///
/// Accepts `row` or `segment` (case-insensitive); unset or empty keeps
/// the default ([`StorageMode::Segment`]), and any other value is a hard
/// [`RelError::Plan`] error. Read only by [`ExecConfig::from_env`],
/// alongside [`THREADS_ENV`] and [`MODE_ENV`].
pub const STORAGE_ENV: &str = "GUAVA_STORAGE";

/// Environment variable enabling adaptive execution ([`ExecConfig::adaptive`]).
///
/// Accepts `1`/`true`/`on` to enable and `0`/`false`/`off` to disable
/// (case-insensitive); unset or empty keeps the default (off), and any
/// other value is a hard [`RelError::Plan`] error. Read only by
/// [`ExecConfig::from_env`], alongside the other executor variables.
///
/// With adaptivity on, pipelines observe real per-stage pass rates over a
/// warm-up prefix of the input and may re-order statically infallible
/// filter towers or switch row↔lane kernels mid-query (see `exec::ops`
/// and DESIGN.md §17). Results stay byte-identical either way — the knob
/// trades a little observation overhead for robustness against
/// mis-ordered filters.
pub const ADAPTIVE_ENV: &str = "GUAVA_EXEC_ADAPTIVE";

/// Default minimum input cardinality for an operator to go parallel.
/// Below this, spawning threads costs more than the scan saves.
pub const PARALLEL_THRESHOLD: usize = 4096;

/// Rows observed row-wise before an adaptive pipeline decides whether to
/// re-order its filter tower or switch kernels (see [`ADAPTIVE_ENV`]).
pub const ADAPT_WARMUP: usize = 4 * BATCH_SIZE;

/// How the executor evaluates a plan. Every mode produces byte-identical
/// tables and errors; they differ only in the physical inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Push-based executor with row-at-a-time kernels everywhere — the
    /// pre-vectorization inner loops, kept as the fallback lane and the
    /// baseline axis of `--bench-executor`.
    Streaming,
    /// Push-based executor with columnar kernels: lane expression programs
    /// over fused Select/Project chains (see `exec::vector`) and
    /// lane-aware blocking operators (see `exec::blocking`). Expressions
    /// or storage the lanes cannot represent fall back to the row path
    /// with identical results.
    #[default]
    Vectorized,
    /// The operator-at-a-time reference interpreter
    /// (`Plan::eval_materialized`): a full table at every node. The oracle
    /// the push-based modes are property-tested against.
    Materialized,
}

/// Which resting format scans read from. Both produce byte-identical
/// tables and errors; they differ only in how scan batches are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Scans emit the table's row storage as one zero-copy window; lanes
    /// are shredded per batch (the pre-segment layout, kept as the drift
    /// canary — see `scripts/check.sh`).
    Row,
    /// Scans read the table's sealed columnar prefix
    /// ([`crate::segment`]): per-segment batches with lanes sliced
    /// straight from segment storage (zero shredding), zone-map pruning
    /// of pushed-down filter conjuncts, and a row-form scan of the delta
    /// tail past the sealed prefix.
    #[default]
    Segment,
}

/// Tuning knobs for the executor's morsel-parallel path.
///
/// The configuration never changes *what* a plan evaluates to — all
/// [`ExecMode`]s and thread counts produce byte-identical tables and
/// errors (see [`morsel`] and `exec::vector`) — only which inner loops run
/// and how much hardware they use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for parallel operators. `1` forces the serial path.
    pub threads: usize,
    /// Minimum input rows before an operator considers going parallel.
    pub parallel_threshold: usize,
    /// Rows per morsel. Fixed morsel boundaries (independent of thread
    /// count) are what make parallel output deterministic; change this
    /// only to exercise merge logic in tests.
    pub morsel_size: usize,
    /// Evaluation strategy: vectorized (default), row streaming, or the
    /// materializing interpreter.
    pub mode: ExecMode,
    /// Resting format scans read from: sealed column segments (default)
    /// or the row store.
    pub storage: StorageMode,
    /// Observe real per-batch selectivities during a warm-up prefix and
    /// re-order filter towers / switch row↔lane kernels mid-query when
    /// the observed rates say the static choice was wrong. Off by
    /// default; byte-identical results either way (see `exec::ops`).
    pub adaptive: bool,
}

impl Default for ExecConfig {
    /// Threads from [`std::thread::available_parallelism`], the default
    /// cardinality threshold, the default morsel size, and the vectorized
    /// mode.
    fn default() -> ExecConfig {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parallel_threshold: PARALLEL_THRESHOLD,
            morsel_size: morsel::MORSEL_SIZE,
            mode: ExecMode::default(),
            storage: StorageMode::default(),
            adaptive: false,
        }
    }
}

impl ExecConfig {
    /// A configuration that always takes the serial path.
    pub fn serial() -> ExecConfig {
        ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        }
    }

    /// Default configuration with an explicit worker count (min 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// Read the configuration from the environment. This is the single
    /// entry point for executor env handling: [`THREADS_ENV`] sets the
    /// worker count, [`MODE_ENV`] sets the [`ExecMode`], and
    /// [`STORAGE_ENV`] sets the [`StorageMode`]. Unset or
    /// empty variables keep the defaults (as does `GUAVA_EXEC_THREADS=0`,
    /// the documented "auto" spelling), but any other unparsable value is
    /// a hard error — a typo in an env override must not silently fall
    /// back to a different execution strategy. All variables are
    /// re-evaluated on every call (and thus on every [`execute`] /
    /// `Plan::eval`), so tests can flip them at run time.
    pub fn from_env() -> RelResult<ExecConfig> {
        Self::from_env_values(
            std::env::var(THREADS_ENV).ok().as_deref(),
            std::env::var(MODE_ENV).ok().as_deref(),
            std::env::var(STORAGE_ENV).ok().as_deref(),
            std::env::var(ADAPTIVE_ENV).ok().as_deref(),
        )
    }

    /// Pure core of [`Self::from_env`]: parse explicit override strings
    /// with exactly the env semantics ([`THREADS_ENV`] / [`MODE_ENV`] /
    /// [`STORAGE_ENV`] / [`ADAPTIVE_ENV`] in that order — unset/empty
    /// keeps the default, anything unparsable is a hard error). Public so
    /// higher layers (e.g. `guava_warehouse::service::EngineConfig`) can
    /// layer explicit builder fields over the same defaults without
    /// re-implementing — or silently diverging from — the env grammar.
    pub fn from_env_values(
        threads: Option<&str>,
        mode: Option<&str>,
        storage: Option<&str>,
        adaptive: Option<&str>,
    ) -> RelResult<ExecConfig> {
        let mut cfg = match threads.map(str::trim).filter(|s| !s.is_empty()) {
            None => ExecConfig::default(),
            Some(s) => match s.parse::<usize>() {
                Ok(0) => ExecConfig::default(), // documented "auto" spelling
                Ok(n) => ExecConfig::with_threads(n),
                Err(_) => {
                    return Err(RelError::Plan(format!(
                        "invalid {THREADS_ENV} value `{s}`: expected a thread count (0 = auto)"
                    )))
                }
            },
        };
        cfg.mode = match mode.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            None | Some("") => ExecMode::default(),
            Some("streaming") => ExecMode::Streaming,
            Some("vectorized") => ExecMode::Vectorized,
            Some("materialized") => ExecMode::Materialized,
            Some(other) => {
                return Err(RelError::Plan(format!(
                    "invalid {MODE_ENV} value `{other}`: expected streaming, vectorized, or materialized"
                )))
            }
        };
        cfg.storage = match storage.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            None | Some("") => StorageMode::default(),
            Some("row") => StorageMode::Row,
            Some("segment") => StorageMode::Segment,
            Some(other) => {
                return Err(RelError::Plan(format!(
                    "invalid {STORAGE_ENV} value `{other}`: expected row or segment"
                )))
            }
        };
        cfg.adaptive = match adaptive.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            None | Some("") => false,
            Some("1") | Some("true") | Some("on") => true,
            Some("0") | Some("false") | Some("off") => false,
            Some(other) => {
                return Err(RelError::Plan(format!(
                    "invalid {ADAPTIVE_ENV} value `{other}`: expected 1/true/on or 0/false/off"
                )))
            }
        };
        Ok(cfg)
    }

    /// Should an operator over `rows` input rows take the parallel path?
    fn parallel_for(&self, rows: usize) -> bool {
        self.threads > 1 && rows > 0 && rows >= self.parallel_threshold
    }
}

/// The executor session API: one configured handle that evaluates any
/// number of plans. `Plan::eval`, `Plan::eval_with`,
/// `Plan::eval_materialized`, and the ETL workflow runners are all thin
/// wrappers over an `Executor`; construct one directly to pin a
/// configuration once and reuse it:
///
/// ```
/// use guava_relational::exec::{ExecMode, Executor};
/// # use guava_relational::database::Database;
/// # use guava_relational::algebra::Plan;
/// # use guava_relational::schema::{Column, Schema};
/// # use guava_relational::table::Table;
/// # use guava_relational::value::DataType;
/// # let schema = Schema::new("t", vec![Column::new("x", DataType::Int)]).unwrap();
/// # let mut db = Database::new("d");
/// # db.create_table(Table::from_rows(schema, vec![]).unwrap()).unwrap();
/// let exec = Executor::new()
///     .threads(2)
///     .morsel_size(512)
///     .mode(ExecMode::Vectorized);
/// let table = exec.execute(&Plan::scan("t"), &db).unwrap();
/// # assert_eq!(table.len(), 0);
/// ```
///
/// The builder methods move `self`, so a shared executor is cheap to
/// specialize: `base.mode(ExecMode::Streaming)` copies the handle. Like
/// [`ExecConfig`], the configuration never changes what a plan evaluates
/// to — only which physical loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Executor {
    cfg: ExecConfig,
}

impl Executor {
    /// An executor with the default configuration ([`ExecConfig::default`]).
    pub fn new() -> Executor {
        Executor::default()
    }

    /// An executor configured from the environment
    /// ([`ExecConfig::from_env`]); fails on unparsable env overrides.
    pub fn from_env() -> RelResult<Executor> {
        Ok(Executor {
            cfg: ExecConfig::from_env()?,
        })
    }

    /// An executor over an existing configuration.
    pub fn with_config(cfg: ExecConfig) -> Executor {
        Executor { cfg }
    }

    /// Set the worker thread count (min 1; `1` forces the serial path).
    pub fn threads(mut self, n: usize) -> Executor {
        self.cfg.threads = n.max(1);
        self
    }

    /// Set the rows-per-morsel size (min 1).
    pub fn morsel_size(mut self, m: usize) -> Executor {
        self.cfg.morsel_size = m.max(1);
        self
    }

    /// Set the minimum input cardinality for operators to go parallel.
    pub fn parallel_threshold(mut self, rows: usize) -> Executor {
        self.cfg.parallel_threshold = rows;
        self
    }

    /// Set the evaluation strategy.
    pub fn mode(mut self, mode: ExecMode) -> Executor {
        self.cfg.mode = mode;
        self
    }

    /// Set the resting format scans read from.
    pub fn storage(mut self, storage: StorageMode) -> Executor {
        self.cfg.storage = storage;
        self
    }

    /// Enable or disable adaptive execution ([`ExecConfig::adaptive`]).
    pub fn adaptive(mut self, adaptive: bool) -> Executor {
        self.cfg.adaptive = adaptive;
        self
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Evaluate `plan` against `db` under this executor's configuration.
    pub fn execute(&self, plan: &Plan, db: &Database) -> RelResult<Table> {
        execute_with(plan, db, &self.cfg)
    }
}

/// Evaluate `plan` against `db` with the configuration from the
/// environment ([`ExecConfig::from_env`]). This is what [`Plan::eval`]
/// calls.
pub fn execute(plan: &Plan, db: &Database) -> RelResult<Table> {
    execute_with(plan, db, &ExecConfig::from_env()?)
}

/// Evaluate `plan` against `db` with an explicit [`ExecConfig`]. Results
/// are identical for every configuration; tests use this to pin the
/// serial or parallel path (or a specific [`ExecMode`]) without touching
/// the process environment.
pub fn execute_with(plan: &Plan, db: &Database, cfg: &ExecConfig) -> RelResult<Table> {
    // The materializing interpreter is its own self-contained recursion;
    // the push-based machinery below is never built for it.
    if cfg.mode == ExecMode::Materialized {
        return plan.interpret(db);
    }
    // A bare scan (or inline relation) at the root returns the stored table
    // itself — primary key included — exactly like the materializing
    // interpreter. With Arc-shared storage the clone is O(1).
    match plan {
        Plan::Scan(name) => return db.table(name).cloned(),
        Plan::Values { schema, rows } => return Table::from_rows(schema.clone(), rows.clone()),
        _ => {}
    }
    let (schema, exec) = compile(plan, db, *cfg)?;
    let batches = ops::drive(exec.into_tree(*cfg))?;
    let mut rows: Vec<Row> = Vec::with_capacity(batches.iter().map(batch::Batch::len).sum());
    for b in batches {
        rows.extend(b.into_rows());
    }
    // Every operator validated its own output wherever validation can fail
    // at all, so assembling the result does not re-check rows.
    Table::from_validated(schema, rows)
}

/// A compiled subtree: either a fusable pipeline (so a parent
/// Select/Project can append itself as a stage) or a sealed operator tree.
enum Exec<'p> {
    Pipe {
        source: ops::OpTree<'p>,
        stages: Vec<Stage<'p>>,
    },
    Tree(ops::OpTree<'p>),
}

impl<'p> Exec<'p> {
    /// View this subtree as a pipeline to fuse more stages onto. Sealed
    /// trees become the pipeline's source.
    fn into_pipeline(self) -> (ops::OpTree<'p>, Vec<Stage<'p>>) {
        match self {
            Exec::Pipe { source, stages } => (source, stages),
            Exec::Tree(t) => (t, Vec::new()),
        }
    }

    /// Seal this subtree into an operator tree. A pipeline with no stages
    /// is its source; otherwise a `PipelineOp` node wraps it (the operator
    /// itself decides per batch between the row path, the columnar
    /// programs, and the morsel-parallel variant).
    fn into_tree(self, cfg: ExecConfig) -> ops::OpTree<'p> {
        match self {
            Exec::Pipe { source, stages } if stages.is_empty() => source,
            Exec::Pipe { mut source, stages } => {
                // Push decomposable leading filters down to the segment
                // scan as zone-map prune groups (see `prune_groups`).
                if let ops::OpTree::SegmentLeaf { prune, .. } = &mut source {
                    *prune = prune_groups(&stages);
                }
                ops::OpTree::Node {
                    op: Box::new(ops::PipelineOp::new(stages, cfg)),
                    children: vec![source],
                }
            }
            Exec::Tree(t) => t,
        }
    }
}

/// Compile a plan into its output schema and physical operator tree.
/// Binding recurses children-first, so schema errors surface in the same
/// order the materializing interpreter reports them.
fn compile<'p>(plan: &'p Plan, db: &Database, cfg: ExecConfig) -> RelResult<(Schema, Exec<'p>)> {
    Ok(match plan {
        Plan::Scan(name) => {
            let t = db.table(name)?;
            // Under segment storage the scan reads the table's sealed
            // columnar prefix (plus the row-form delta tail); under row
            // storage it stays the historical single shared window.
            let source = if cfg.storage == StorageMode::Segment {
                let list = t.segments();
                ops::OpTree::SegmentLeaf {
                    rows: t.shared_rows(),
                    segments: list.segments().to_vec(),
                    covered: list.covered(),
                    prune: Vec::new(),
                }
            } else {
                ops::OpTree::Leaf(t.shared_rows())
            };
            (
                t.schema().clone(),
                Exec::Pipe {
                    source,
                    stages: Vec::new(),
                },
            )
        }
        Plan::Values { schema, rows } => {
            // Inline relations validate eagerly — duplicate-key checks
            // included — mirroring `Table::from_rows` in the interpreter.
            let t = Table::from_rows(schema.clone(), rows.clone())?;
            (
                t.schema().clone(),
                Exec::Pipe {
                    source: ops::OpTree::Leaf(t.shared_rows()),
                    stages: Vec::new(),
                },
            )
        }
        Plan::Select { input, predicate } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = keyless(in_schema.clone());
            let (source, mut stages) = child.into_pipeline();
            stages.push(Stage::Filter {
                predicate,
                schema: in_schema,
            });
            (out, Exec::Pipe { source, stages })
        }
        Plan::Project { input, columns } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = project_output_schema(&in_schema, columns)?;
            let (source, mut stages) = child.into_pipeline();
            stages.push(Stage::Map {
                exprs: columns,
                in_schema,
                out_schema: out.clone(),
            });
            (out, Exec::Pipe { source, stages })
        }
        Plan::Rename {
            input,
            table,
            columns,
        } => {
            // Pure metadata: rows pass through untouched, so Rename costs
            // nothing at run time.
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = rename_output_schema(&in_schema, table.as_deref(), columns)?;
            (out, child)
        }
        Plan::Join {
            left,
            right,
            on,
            kind,
        } => {
            let (ls, lchild) = compile(left, db, cfg)?;
            let (rs, rchild) = compile(right, db, cfg)?;
            let l_idx = resolve_columns(&ls, on.iter().map(|(l, _)| l))?;
            let r_idx = resolve_columns(&rs, on.iter().map(|(_, r)| r))?;
            let schema = join_output_schema(&ls, &rs, *kind)?;
            let op = ops::JoinOp::new(ls, rs, l_idx, r_idx, *kind, cfg);
            // The build (right) side is input 0: the driver exhausts it
            // before the probe child produces a row, preserving the
            // executor's historical build-first runtime order.
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![rchild.into_tree(cfg), lchild.into_tree(cfg)],
                }),
            )
        }
        Plan::Union { inputs } => {
            let mut iter = inputs.iter();
            let first = iter
                .next()
                .ok_or_else(|| RelError::Plan("union of zero inputs".into()))?;
            let (first_schema, first_child) = compile(first, db, cfg)?;
            let schema = keyless(first_schema);
            let mut children = vec![first_child.into_tree(cfg)];
            for p in iter {
                let (s, c) = compile(p, db, cfg)?;
                check_union_compatible(&schema, &s)?;
                children.push(c.into_tree(cfg));
            }
            // Later inputs may be nullable where the leading schema says
            // NOT NULL; re-check rows only when that can actually reject.
            let check_rows = schema.columns().iter().any(|c| !c.nullable);
            let op = ops::UnionOp::new(schema.clone(), check_rows, cfg);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children,
                }),
            )
        }
        Plan::Distinct { input } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let op = ops::DistinctOp::new(schema.clone(), cfg);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
        Plan::Unpivot {
            input,
            keys,
            attr_col,
            val_col,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let key_idx = resolve_columns(&s, keys)?;
            let data_idx: Vec<usize> = (0..s.arity()).filter(|i| !key_idx.contains(i)).collect();
            let schema = unpivot_output_schema(&s, &key_idx, attr_col, val_col)?;
            let op = ops::UnpivotOp::new(s, key_idx, data_idx);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
        Plan::Pivot {
            input,
            keys,
            attr_col,
            val_col,
            attrs,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let key_idx = resolve_columns(&s, keys)?;
            let attr_idx = resolve_column(&s, attr_col)?;
            let val_idx = resolve_column(&s, val_col)?;
            let schema = pivot_output_schema(&s, &key_idx, attrs)?;
            let op = ops::PivotOp::new(s, key_idx, attr_idx, val_idx, attrs, cfg);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
        Plan::AggregateBy {
            input,
            group_by,
            aggregates,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let g_idx = resolve_columns(&s, group_by)?;
            let agg_idx = resolve_aggregate_columns(&s, aggregates)?;
            let schema = aggregate_output_schema(&s, &g_idx, &agg_idx, aggregates)?;
            // Integer sums are wrapping, hence associative; `f64` sums are
            // not, so SUM/AVG over a FLOAT column pins the serial kernel to
            // keep parallel results bit-identical to serial ones.
            let associative =
                aggregates
                    .iter()
                    .zip(&agg_idx)
                    .all(|(a, idx)| match (&a.func, idx) {
                        (AggFunc::Sum(_) | AggFunc::Avg(_), Some(i)) => {
                            s.columns()[*i].data_type != DataType::Float
                        }
                        _ => true,
                    });
            let op = ops::AggregateOp::new(
                s,
                schema.clone(),
                g_idx,
                agg_idx,
                aggregates,
                associative,
                cfg,
            );
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
        Plan::Sort { input, by } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let idxs = resolve_columns(&schema, by)?;
            let op = ops::SortOp::new(schema.clone(), idxs, cfg);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
        Plan::Limit { input, n } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let op = ops::LimitOp::new(*n);
            (
                schema,
                Exec::Tree(ops::OpTree::Node {
                    op: Box::new(op),
                    children: vec![child.into_tree(cfg)],
                }),
            )
        }
    })
}

/// One fused per-row transform.
enum Stage<'p> {
    /// σ — drop rows failing the predicate (from `Plan::Select`).
    Filter { predicate: &'p Expr, schema: Schema },
    /// π — evaluate expressions into a fresh row (from `Plan::Project`).
    /// Output rows are validated against `out_schema`, exactly as
    /// `Table::from_rows` would in the interpreter.
    Map {
        exprs: &'p [(String, Expr)],
        in_schema: Schema,
        out_schema: Schema,
    },
}

/// A row travelling through fused stages: borrowed from shared storage
/// until some stage builds a fresh row, and cloned only if it survives to
/// the output batch.
enum Flow<'a> {
    Borrowed(&'a Row),
    Owned(Row),
}

impl Flow<'_> {
    fn as_slice(&self) -> &[Value] {
        match self {
            Flow::Borrowed(r) => r,
            Flow::Owned(r) => r,
        }
    }

    fn into_row(self) -> Row {
        match self {
            Flow::Borrowed(r) => r.clone(),
            Flow::Owned(r) => r,
        }
    }
}

fn apply_stages(stages: &[Stage], mut row: Flow<'_>) -> RelResult<Option<Row>> {
    for stage in stages {
        match stage {
            Stage::Filter { predicate, schema } => {
                if !predicate.matches(schema, row.as_slice())? {
                    return Ok(None);
                }
            }
            Stage::Map {
                exprs,
                in_schema,
                out_schema,
            } => {
                let input = row.as_slice();
                let mut out = Vec::with_capacity(exprs.len());
                for (_, e) in exprs.iter() {
                    out.push(e.eval(in_schema, input)?);
                }
                out_schema.check_row(&out)?;
                row = Flow::Owned(out);
            }
        }
    }
    Ok(Some(row.into_row()))
}

/// One pushed-down filter conjunct in `column ⟨op⟩ literal` form,
/// extracted from a fused [`Stage::Filter`] so a segment scan can consult
/// zone maps before forming a batch (see [`segment_pruned`]).
#[derive(Debug, Clone)]
pub(crate) struct SimplePred {
    col: usize,
    op: PredOp,
    lit: Value,
}

/// Comparison shape of a [`SimplePred`], normalized to `column ⟨op⟩ lit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    IsNull,
    IsNotNull,
}

impl PredOp {
    fn from_bin(op: BinOp) -> Option<PredOp> {
        match op {
            BinOp::Eq => Some(PredOp::Eq),
            BinOp::Ne => Some(PredOp::Ne),
            BinOp::Lt => Some(PredOp::Lt),
            BinOp::Le => Some(PredOp::Le),
            BinOp::Gt => Some(PredOp::Gt),
            BinOp::Ge => Some(PredOp::Ge),
            _ => None,
        }
    }

    /// Mirror the comparison for `lit ⟨op⟩ column` sources.
    fn flip(self) -> PredOp {
        match self {
            PredOp::Lt => PredOp::Gt,
            PredOp::Le => PredOp::Ge,
            PredOp::Gt => PredOp::Lt,
            PredOp::Ge => PredOp::Le,
            other => other,
        }
    }
}

/// The comparison domain of a segment column or literal under
/// [`Value::sql_cmp`]: ordering comparisons across different domains (or
/// against NaN) are the exact cases where the row kernel raises "cannot
/// compare", so pruning demands a domain match first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpDomain {
    Numeric,
    Text,
    Bool,
    Date,
}

impl SimplePred {
    /// Could evaluating this predicate over the segment's rows raise an
    /// error? Equality and null tests never error. Ordering comparisons
    /// error exactly when both sides are non-null and incomparable, so
    /// they are infallible when the literal is NULL, when the column is
    /// all-NULL, or when both sides share a [`CmpDomain`] with no NaN on
    /// either side. Pruning must never skip a segment the real scan would
    /// have errored on — a prune group with any fallible conjunct
    /// disqualifies the whole segment from skipping.
    fn infallible_on(&self, seg: &Segment) -> bool {
        match self.op {
            PredOp::Eq | PredOp::Ne | PredOp::IsNull | PredOp::IsNotNull => true,
            PredOp::Lt | PredOp::Le | PredOp::Gt | PredOp::Ge => {
                if self.lit.is_null() {
                    return true;
                }
                let col = seg.column(self.col);
                let zone = col.zone();
                if zone.null_count == seg.len() {
                    return true;
                }
                let col_dom = match col.data {
                    // `Mixed` only arises from INTs widened into a
                    // declared-FLOAT column (schema validation rejects
                    // everything else), so it is numeric storage too.
                    ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Mixed(_) => {
                        CmpDomain::Numeric
                    }
                    ColumnData::Str(_) | ColumnData::Dict { .. } => CmpDomain::Text,
                    ColumnData::Bool(_) => CmpDomain::Bool,
                    ColumnData::Date(_) => CmpDomain::Date,
                };
                let lit_dom = match &self.lit {
                    Value::Int(_) | Value::Float(_) => CmpDomain::Numeric,
                    Value::Text(_) => CmpDomain::Text,
                    Value::Bool(_) => CmpDomain::Bool,
                    Value::Date(_) => CmpDomain::Date,
                    Value::Null => unreachable!("handled above"),
                };
                let lit_nan = matches!(self.lit, Value::Float(f) if f.is_nan());
                col_dom == lit_dom && !zone.has_nan && !lit_nan
            }
        }
    }

    /// Could evaluating this predicate raise an error on *any* row the
    /// declared schema admits? The *static* counterpart of
    /// [`Self::infallible_on`], used by adaptive filter re-ordering
    /// (`exec::ops`), which must stay sound for rows it has not seen yet —
    /// so it consults declared column types instead of a segment's actual
    /// values. Equality and null tests never error. Ordering comparisons
    /// are statically infallible when the literal is NULL, or when the
    /// declared type's domain matches the literal's and neither side can
    /// be NaN — a declared FLOAT column may hold NaN at run time and
    /// disqualifies itself, while INT columns store only true integers
    /// (schema validation), making them NaN-free numeric.
    fn statically_infallible(&self, schema: &Schema) -> bool {
        match self.op {
            PredOp::Eq | PredOp::Ne | PredOp::IsNull | PredOp::IsNotNull => true,
            PredOp::Lt | PredOp::Le | PredOp::Gt | PredOp::Ge => {
                if self.lit.is_null() {
                    return true;
                }
                let decl = schema.columns()[self.col].data_type;
                let col_dom = match decl {
                    DataType::Int | DataType::Float => CmpDomain::Numeric,
                    DataType::Text => CmpDomain::Text,
                    DataType::Bool => CmpDomain::Bool,
                    DataType::Date => CmpDomain::Date,
                };
                let col_nan = decl == DataType::Float;
                let lit_dom = match &self.lit {
                    Value::Int(_) | Value::Float(_) => CmpDomain::Numeric,
                    Value::Text(_) => CmpDomain::Text,
                    Value::Bool(_) => CmpDomain::Bool,
                    Value::Date(_) => CmpDomain::Date,
                    Value::Null => unreachable!("handled above"),
                };
                let lit_nan = matches!(self.lit, Value::Float(f) if f.is_nan());
                col_dom == lit_dom && !col_nan && !lit_nan
            }
        }
    }

    /// Does the zone map prove no row of the segment satisfies this
    /// predicate? Sound against the row kernels because the zone min/max
    /// are [`Value::total_cmp`] extrema and every trigger below uses the
    /// same [`Value::sql_cmp`] the kernels evaluate with: a strict
    /// `lit < min` (resp. `> max`) rules out `sql_eq` matches, and by the
    /// time ordering arms run, [`Self::infallible_on`] has excluded NaN
    /// and cross-domain cases, where `sql_cmp` and the total order could
    /// disagree. Lossy `i64`→`f64` literals stay sound: the kernels
    /// compare through the same lossy `sql_cmp`, and `sql_eq`'s exact
    /// Int–Int equality implies `f64` equality, which a strict `sql_cmp`
    /// inequality excludes.
    fn proves_empty(&self, seg: &Segment) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        let zone = seg.zone(self.col);
        match self.op {
            PredOp::IsNull => zone.null_count == 0,
            PredOp::IsNotNull => zone.null_count == seg.len(),
            // A NULL literal makes every comparison NULL: no row passes.
            _ if self.lit.is_null() => true,
            // An all-NULL column likewise.
            _ if zone.null_count == seg.len() => true,
            PredOp::Eq => {
                self.lit.sql_cmp(&zone.min) == Some(Less)
                    || self.lit.sql_cmp(&zone.max) == Some(Greater)
            }
            PredOp::Ne => false,
            PredOp::Lt => matches!(zone.min.sql_cmp(&self.lit), Some(Equal | Greater)),
            PredOp::Le => zone.min.sql_cmp(&self.lit) == Some(Greater),
            PredOp::Gt => matches!(zone.max.sql_cmp(&self.lit), Some(Less | Equal)),
            PredOp::Ge => zone.max.sql_cmp(&self.lit) == Some(Less),
        }
    }
}

/// Extract zone-map prune groups from the leading fused filters: one
/// group per [`Stage::Filter`] whose predicate fully decomposes into
/// simple `column ⟨op⟩ literal` conjuncts. Extraction stops at the first
/// `Map` or non-decomposable filter — a later group may only skip rows
/// that every earlier stage is known not to error on, and an opaque stage
/// voids that guarantee.
fn prune_groups(stages: &[Stage]) -> Vec<Vec<SimplePred>> {
    let mut groups = Vec::new();
    for stage in stages {
        let Stage::Filter { predicate, schema } = stage else {
            break;
        };
        let mut group = Vec::new();
        if !decompose(predicate, schema, &mut group) {
            break;
        }
        groups.push(group);
    }
    groups
}

/// Flatten `e` into simple conjuncts, returning `false` (partial pushes
/// to `out` discarded by the caller) when any part is not of the
/// `column ⟨op⟩ literal` / `column IS [NOT] NULL` shape.
fn decompose(e: &Expr, schema: &Schema, out: &mut Vec<SimplePred>) -> bool {
    let simple_col = |e: &Expr| match e {
        Expr::Col(name) => resolve_column(schema, name).ok(),
        _ => None,
    };
    match e {
        Expr::Bin(BinOp::And, a, b) => decompose(a, schema, out) && decompose(b, schema, out),
        Expr::Bin(op, a, b) => {
            let Some(op) = PredOp::from_bin(*op) else {
                return false;
            };
            let (col, op, lit) = match (&**a, &**b) {
                (col_e, Expr::Lit(v)) => match simple_col(col_e) {
                    Some(c) => (c, op, v),
                    None => return false,
                },
                (Expr::Lit(v), col_e) => match simple_col(col_e) {
                    Some(c) => (c, op.flip(), v),
                    None => return false,
                },
                _ => return false,
            };
            out.push(SimplePred {
                col,
                op,
                lit: lit.clone(),
            });
            true
        }
        Expr::IsNull(inner) => match simple_col(inner) {
            Some(col) => {
                out.push(SimplePred {
                    col,
                    op: PredOp::IsNull,
                    lit: Value::Null,
                });
                true
            }
            None => false,
        },
        Expr::IsNotNull(inner) => match simple_col(inner) {
            Some(col) => {
                out.push(SimplePred {
                    col,
                    op: PredOp::IsNotNull,
                    lit: Value::Null,
                });
                true
            }
            None => false,
        },
        _ => false,
    }
}

/// Can the scan skip `seg` entirely? Groups are consulted in stage order:
/// a group may prove the segment empty only if it — and every group
/// before it — is infallible on the segment, because skipped rows also
/// skip the errors later fused stages might have raised on them. Pruned
/// segments therefore contribute neither rows nor errors, exactly like
/// the unpruned run.
pub(crate) fn segment_pruned(seg: &Segment, groups: &[Vec<SimplePred>]) -> bool {
    for group in groups {
        if group.iter().any(|p| !p.infallible_on(seg)) {
            return false;
        }
        if group.iter().any(|p| p.proves_empty(seg)) {
            return true;
        }
    }
    false
}

/// Length of the re-orderable filter prefix of a pipeline: the number of
/// leading [`Stage::Filter`]s (stopping at the first `Map` or opaque
/// filter) whose predicates fully decompose into simple conjuncts that
/// are [`SimplePred::statically_infallible`] for the stage's schema.
///
/// Within this prefix, filters commute byte-identically: none of them can
/// error on *any* admissible row, they are pure row predicates over the
/// unchanged pipeline input schema, and conjunction is order-independent
/// on the surviving row set — so the rows reaching the first
/// non-reorderable stage (and hence every later error and every output
/// byte) are the same under any permutation. This is the legality gate
/// for adaptive filter-tower re-ordering (`exec::ops`, DESIGN.md §17).
fn reorderable_prefix(stages: &[Stage]) -> usize {
    let mut n = 0;
    for stage in stages {
        let Stage::Filter { predicate, schema } = stage else {
            break;
        };
        let mut preds = Vec::new();
        if !decompose(predicate, schema, &mut preds) {
            break;
        }
        if preds.iter().any(|p| !p.statically_infallible(schema)) {
            break;
        }
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{AggFunc, Aggregate, JoinKind};
    use crate::schema::Column;
    use crate::value::DataType;
    use std::sync::Arc;

    fn wide_db(n: i64) -> Database {
        let schema = Schema::new(
            "t",
            vec![
                Column::required("id", DataType::Int),
                Column::new("grp", DataType::Text),
                Column::new("x", DataType::Int),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::text(if i % 2 == 0 { "even" } else { "odd" }),
                    Value::Int(i % 7),
                ]
            })
            .collect();
        let mut db = Database::new("d");
        db.create_table(Table::from_rows(schema, rows).unwrap())
            .unwrap();
        db
    }

    fn assert_agrees(plan: &Plan, db: &Database) {
        let streamed = plan.eval(db);
        let materialized = plan.eval_materialized(db);
        match (streamed, materialized) {
            (Ok(s), Ok(m)) => assert_eq!(s, m, "streamed != materialized for {plan:?}"),
            (Err(s), Err(m)) => assert_eq!(s, m, "errors differ for {plan:?}"),
            (s, m) => panic!("evaluators disagree for {plan:?}: {s:?} vs {m:?}"),
        }
    }

    #[test]
    fn root_scan_shares_storage() {
        let db = wide_db(100);
        let t = Plan::scan("t").eval(&db).unwrap();
        // Same Arc: root scans are O(1), not copies.
        assert!(Arc::ptr_eq(
            &t.shared_rows(),
            &db.table("t").unwrap().shared_rows()
        ));
        assert_eq!(t.schema().primary_key(), &[0]);
    }

    #[test]
    fn fused_pipeline_matches_oracle_across_batches() {
        // > BATCH_SIZE rows so the pipeline crosses batch boundaries.
        let db = wide_db(3000);
        let plan = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(2i64)))
            .project(vec![
                ("id".to_owned(), Expr::col("id")),
                ("x2".to_owned(), Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("x2").lt(Expr::lit(10i64)));
        assert_agrees(&plan, &db);
    }

    #[test]
    fn pipeline_emits_bounded_batches() {
        let db = wide_db(2500);
        let plan = Plan::scan("t").select(Expr::lit(true));
        let (_, exec) = compile(&plan, &db, ExecConfig::serial()).unwrap();
        let batches = ops::drive(exec.into_tree(ExecConfig::serial())).unwrap();
        let mut total = 0;
        for b in &batches {
            assert!(b.len() > 0 && b.len() <= BATCH_SIZE);
            total += b.len();
        }
        assert_eq!(total, 2500);
    }

    #[test]
    fn join_union_distinct_agree() {
        let db = wide_db(500);
        let join = Plan::scan("t").join(
            Plan::scan("t").project_cols(&["id", "grp"]),
            vec![("id", "id")],
            JoinKind::Inner,
        );
        assert_agrees(&join, &db);

        let left = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(3i64)))
            .join(
                Plan::scan("t").select(Expr::col("x").lt(Expr::lit(3i64))),
                vec![("id", "id")],
                JoinKind::Left,
            );
        assert_agrees(&left, &db);

        let union = Plan::union(vec![
            Plan::scan("t").project_cols(&["grp"]),
            Plan::scan("t").project_cols(&["grp"]),
        ])
        .distinct();
        assert_agrees(&union, &db);
    }

    #[test]
    fn blocking_operators_agree() {
        let db = wide_db(300);
        let agg = Plan::scan("t")
            .aggregate(
                &["grp"],
                vec![
                    Aggregate {
                        func: AggFunc::CountAll,
                        alias: "n".into(),
                    },
                    Aggregate {
                        func: AggFunc::Sum("x".into()),
                        alias: "sx".into(),
                    },
                ],
            )
            .sort_by(&["grp"]);
        assert_agrees(&agg, &db);

        let eav = Plan::Unpivot {
            input: Box::new(Plan::scan("t")),
            keys: vec!["id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
        };
        let roundtrip = Plan::Pivot {
            input: Box::new(eav.clone()),
            keys: vec!["id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
            attrs: vec![("grp".into(), DataType::Text), ("x".into(), DataType::Int)],
        };
        assert_agrees(&eav, &db);
        assert_agrees(&roundtrip, &db);
    }

    #[test]
    fn binding_errors_match_interpreter() {
        let db = wide_db(10);
        assert_agrees(&Plan::scan("nope"), &db);
        assert_agrees(&Plan::scan("t").sort_by(&["nope"]), &db);
        assert_agrees(
            &Plan::scan("t").join(Plan::scan("t"), vec![("nope", "id")], JoinKind::Inner),
            &db,
        );
        assert_agrees(
            &Plan::union(vec![
                Plan::scan("t").project_cols(&["id"]),
                Plan::scan("t").project_cols(&["grp"]),
            ]),
            &db,
        );
        assert_agrees(&Plan::Union { inputs: vec![] }, &db);
    }

    #[test]
    fn row_level_errors_match_interpreter() {
        let db = wide_db(10);
        // Division by zero deep in the data: x is 0 for id 0 and 7.
        let plan = Plan::scan("t").project(vec![(
            "q".to_owned(),
            Expr::lit(100i64).div(Expr::col("x")),
        )]);
        assert_agrees(&plan, &db);
        // Unknown column inside a predicate only fails when a row is
        // actually evaluated — over an empty input both evaluators succeed.
        let empty = Plan::scan("t")
            .select(Expr::lit(false))
            .select(Expr::col("ghost").is_null());
        assert_agrees(&empty, &db);
    }

    #[test]
    fn limit_drains_input_for_error_parity() {
        let db = wide_db(10);
        // The failing row (x == 0 at id 7) lies beyond the limit cutoff;
        // the interpreter still reports it, so the executor must too.
        let plan = Plan::scan("t")
            .select(Expr::col("id").ge(Expr::lit(1i64)))
            .project(vec![(
                "q".to_owned(),
                Expr::lit(100i64).div(Expr::col("x")),
            )])
            .limit(2);
        assert_agrees(&plan, &db);
        assert!(plan.eval(&db).is_err());
        // And a plain limit still truncates correctly.
        assert_agrees(&Plan::scan("t").project_cols(&["id"]).limit(3), &db);
    }

    #[test]
    fn distinct_dedupes_across_batch_boundaries() {
        let db = wide_db(2600);
        let plan = Plan::scan("t").project_cols(&["x"]).distinct();
        let t = plan.eval(&db).unwrap();
        assert_eq!(t.len(), 7);
        assert_agrees(&plan, &db);
    }

    #[test]
    fn values_root_and_intermediate() {
        let db = wide_db(5);
        let schema = Schema::new("v", vec![Column::required("k", DataType::Int)])
            .unwrap()
            .with_primary_key(&["k"])
            .unwrap();
        let values = Plan::Values {
            schema: schema.clone(),
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let root = values.eval(&db).unwrap();
        assert_eq!(root.schema().primary_key(), &[0]);
        assert_agrees(&values, &db);
        // Duplicate keys in an inline relation fail in both evaluators.
        let dup = Plan::Values {
            schema,
            rows: vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        };
        assert_agrees(&dup, &db);
        assert_agrees(&dup.clone().project_cols(&["k"]), &db);
    }

    #[test]
    fn env_config_parses_threads_and_mode() {
        let cfg = ExecConfig::from_env_values(Some("3"), Some("materialized"), None, None).unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.mode, ExecMode::Materialized);
        // Mode matching trims whitespace and ignores case.
        let cfg = ExecConfig::from_env_values(None, Some("  Streaming "), None, None).unwrap();
        assert_eq!(cfg.mode, ExecMode::Streaming);
        assert_eq!(
            ExecConfig::from_env_values(None, Some("vectorized"), None, None)
                .unwrap()
                .mode,
            ExecMode::Vectorized
        );
        // Unset and empty keep the defaults, as does the documented
        // `0 = auto` thread spelling.
        let dflt = ExecConfig::default();
        for auto in [None, Some(""), Some("0"), Some(" 0 ")] {
            assert_eq!(
                ExecConfig::from_env_values(auto, None, None, None)
                    .unwrap()
                    .threads,
                dflt.threads
            );
        }
        for dflt_mode in [None, Some("")] {
            assert_eq!(
                ExecConfig::from_env_values(None, dflt_mode, None, None)
                    .unwrap()
                    .mode,
                ExecMode::Vectorized
            );
        }
    }

    #[test]
    fn env_config_rejects_bad_threads() {
        for bad in ["fast", "-2", "1.5", "3x"] {
            let err = ExecConfig::from_env_values(Some(bad), None, None, None).unwrap_err();
            assert!(
                matches!(err, RelError::Plan(ref m) if m.contains(THREADS_ENV)),
                "unexpected error for {bad:?}: {err:?}"
            );
        }
    }

    #[test]
    fn env_config_rejects_bad_mode() {
        for bad in ["rowwise", "Vector", "streaming!"] {
            let err = ExecConfig::from_env_values(None, Some(bad), None, None).unwrap_err();
            assert!(
                matches!(err, RelError::Plan(ref m) if m.contains(MODE_ENV)),
                "unexpected error for {bad:?}: {err:?}"
            );
        }
    }

    #[test]
    fn env_config_parses_storage() {
        let cfg = ExecConfig::from_env_values(None, None, Some("row"), None).unwrap();
        assert_eq!(cfg.storage, StorageMode::Row);
        // Storage matching trims whitespace and ignores case, like mode.
        let cfg = ExecConfig::from_env_values(None, None, Some("  Segment "), None).unwrap();
        assert_eq!(cfg.storage, StorageMode::Segment);
        // Unset and empty keep the segment default.
        for dflt in [None, Some("")] {
            assert_eq!(
                ExecConfig::from_env_values(None, None, dflt, None)
                    .unwrap()
                    .storage,
                StorageMode::Segment
            );
        }
    }

    #[test]
    fn env_config_rejects_bad_storage() {
        for bad in ["rows", "columnar", "segment!"] {
            let err = ExecConfig::from_env_values(None, None, Some(bad), None).unwrap_err();
            assert!(
                matches!(err, RelError::Plan(ref m) if m.contains(STORAGE_ENV)),
                "unexpected error for {bad:?}: {err:?}"
            );
        }
    }

    #[test]
    fn executor_builder_clamps_and_composes() {
        let exec = Executor::new()
            .threads(0)
            .morsel_size(0)
            .parallel_threshold(17)
            .mode(ExecMode::Streaming);
        assert_eq!(exec.config().threads, 1);
        assert_eq!(exec.config().morsel_size, 1);
        assert_eq!(exec.config().parallel_threshold, 17);
        assert_eq!(exec.config().mode, ExecMode::Streaming);
        // Builder methods copy the handle: specializing one executor
        // leaves the original untouched.
        let base = Executor::new().threads(4);
        let mat = base.mode(ExecMode::Materialized);
        assert_eq!(base.config().mode, ExecMode::Vectorized);
        assert_eq!(mat.config().mode, ExecMode::Materialized);
        assert_eq!(mat.config().threads, 4);
        assert_eq!(
            Executor::with_config(ExecConfig::serial()).config(),
            &ExecConfig::serial()
        );
    }

    #[test]
    fn all_modes_agree_on_a_fused_pipeline() {
        let db = wide_db(2000);
        let plan = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(1i64)))
            .project(vec![
                ("id".to_owned(), Expr::col("id")),
                ("x2".to_owned(), Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("x2").lt(Expr::lit(12i64)));
        let oracle = Executor::new()
            .mode(ExecMode::Materialized)
            .execute(&plan, &db)
            .unwrap();
        for mode in [ExecMode::Streaming, ExecMode::Vectorized] {
            for threads in [1, 3] {
                let exec = Executor::new()
                    .threads(threads)
                    .parallel_threshold(1)
                    .morsel_size(64)
                    .mode(mode);
                let got = exec.execute(&plan, &db).unwrap();
                assert_eq!(got, oracle, "{mode:?} with {threads} threads");
            }
        }
    }
}
