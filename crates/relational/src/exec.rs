//! Streaming batch executor: the physical execution layer behind
//! [`Plan::eval`].
//!
//! The logical algebra in [`crate::algebra`] can be interpreted
//! operator-at-a-time by [`Plan::eval_materialized`], which builds a full
//! [`Table`] at every node — simple and obviously correct, but each
//! operator re-validates and re-allocates every intermediate row. This
//! module compiles the same plans into a tree of batch-at-a-time physical
//! operators (`next_batch() -> RelResult<Option<Batch>>`):
//!
//! * **Scans are zero-copy.** A scan holds the table's `Arc`-shared row
//!   storage (see [`Table::shared_rows`]) and clones only the rows that
//!   survive to an output batch.
//! * **Select / Project / Rename chains fuse** into a single
//!   `PipelineOp` pass: a row flows through every predicate and
//!   projection before the next row is touched, with no intermediate
//!   tables. Rename is free — it only rewrites the schema at compile time.
//! * **Union streams** child after child; **Join** builds its hash index
//!   over the build side once and probes batch-by-batch; **Distinct**
//!   streams behind a seen-set.
//! * Only the inherently blocking operators — Pivot, AggregateBy, Sort —
//!   gather their full input, and they reuse the row kernels shared with
//!   the materializing interpreter (`pivot_rows`, `aggregate_rows`,
//!   `sort_rows`).
//!
//! Compilation ("binding") resolves every schema and column position up
//! front, so schema-level errors — unknown tables or columns, incompatible
//! unions, duplicate output columns — surface before any data flows.
//! Data-dependent errors (expression evaluation, EAV cast failures) surface
//! in row order as batches stream. For plans with a single fault this
//! reproduces the materializing interpreter's error exactly; when a plan
//! contains several independent faults the two evaluators may report
//! different ones (both still fail). `tests/algebra_properties.rs`
//! cross-validates the two evaluators on random plans.
//!
//! # Parallel execution
//!
//! Large inputs take a **morsel-parallel** path (see [`morsel`]): shared
//! scan storage is split into fixed-size row ranges and a small
//! work-stealing scheduler runs the fused pipeline — or a join build /
//! probe, aggregation, or pivot kernel — over the morsels on scoped
//! threads, merging per-morsel results strictly in morsel-index order.
//! That merge rule, together with thread-count-independent morsel
//! boundaries, makes parallel output **byte-identical** to serial output
//! at any thread count; errors keep row order because the lowest-index
//! failing morsel wins. The choice between the serial and parallel path is
//! made per operator by [`ExecConfig`]: inputs below
//! [`ExecConfig::parallel_threshold`] stay serial, and the
//! [`GUAVA_EXEC_THREADS`](THREADS_ENV) environment variable (or an
//! explicit config passed to [`execute_with`] / `Plan::eval_with`)
//! overrides the thread count — `1` forces the serial path everywhere.
//! SUM/AVG over FLOAT columns always run serially: `f64` addition is not
//! associative, and bit-for-bit agreement with the serial kernel matters
//! more than parallel speedup there.
//!
//! # Execution modes and the `Executor` session API
//!
//! [`Executor`] is the single entry point tying the knobs together: a
//! builder over [`ExecConfig`] whose [`ExecMode`] picks the evaluation
//! strategy. [`ExecMode::Vectorized`] (the default) runs fused
//! Select/Project chains over shared scan storage through the columnar
//! kernels in `exec::vector`: each 1024-row batch (or morsel) is shredded into
//! typed per-column arrays with null masks, predicates produce selection
//! masks, and projections produce output columns — amortizing expression
//! dispatch and column-name resolution across the whole batch.
//! Expressions outside the kernel catalog (`CASE`, `COALESCE`, unknown
//! columns) and non-scan pipeline inputs fall back to row-at-a-time
//! `Expr::eval` with byte-identical results and error parity (see
//! `exec::vector` and DESIGN.md §11). [`ExecMode::Streaming`] forces the
//! row-at-a-time pipeline everywhere; [`ExecMode::Materialized`] routes to
//! the operator-at-a-time reference interpreter. All three modes produce
//! identical tables and errors; `tests/algebra_properties.rs` holds them
//! to that on random plans.

pub mod morsel;
mod vector;

use crate::algebra::{
    aggregate_output_schema, aggregate_rows, check_union_compatible, join_output_schema, keyless,
    pivot_output_schema, pivot_rows, project_output_schema, rename_output_schema,
    resolve_aggregate_columns, resolve_column, resolve_columns, sort_rows, unpivot_output_schema,
    unpivot_rows, AggFunc, JoinKind, Plan,
};
use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Target number of rows per batch. Large enough to amortize per-batch
/// dispatch, small enough that a pipeline's working set stays cache-sized.
pub const BATCH_SIZE: usize = 1024;

/// One unit of streamed data: a chunk of rows, all matching the operator's
/// output schema.
pub type Batch = Vec<Row>;

/// A physical operator. Pull-based: each call produces the next non-empty
/// batch of output rows, or `None` once the stream is exhausted.
pub trait Operator {
    fn next_batch(&mut self) -> RelResult<Option<Batch>>;
}

type BoxedOp<'p> = Box<dyn Operator + 'p>;

/// Environment variable overriding the executor's thread count.
///
/// `GUAVA_EXEC_THREADS=1` forces the serial path everywhere; any larger
/// value enables the morsel-parallel path with that many workers for
/// inputs above the cardinality threshold. Unset, `0`, or unparsable
/// values fall back to the host's available parallelism. The variable is
/// re-read on every [`execute`] call, so tests can flip it at run time;
/// code that needs a fixed configuration should call [`execute_with`]
/// (or `Plan::eval_with`) instead of mutating the process environment.
///
/// [`ExecConfig::from_env`] is the one place this variable (and
/// [`MODE_ENV`]) is read.
pub const THREADS_ENV: &str = "GUAVA_EXEC_THREADS";

/// Environment variable overriding the executor's [`ExecMode`].
///
/// Accepts `streaming`, `vectorized`, or `materialized`
/// (case-insensitive); unset or unrecognized values keep the default
/// ([`ExecMode::Vectorized`]). Read only by [`ExecConfig::from_env`],
/// alongside [`THREADS_ENV`].
pub const MODE_ENV: &str = "GUAVA_EXEC_MODE";

/// Default minimum input cardinality for an operator to go parallel.
/// Below this, spawning threads costs more than the scan saves.
pub const PARALLEL_THRESHOLD: usize = 4096;

/// How the executor evaluates a plan. Every mode produces byte-identical
/// tables and errors; they differ only in the physical inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Streaming batch executor with row-at-a-time expression evaluation
    /// — the pre-vectorization pipeline, kept as the fallback lane and the
    /// baseline axis of `--bench-executor`.
    Streaming,
    /// Streaming batch executor with columnar expression kernels (see
    /// `exec::vector`) over fused Select/Project chains; expressions or inputs
    /// the kernels cannot handle fall back to the row path per expression.
    #[default]
    Vectorized,
    /// The operator-at-a-time reference interpreter
    /// (`Plan::eval_materialized`): a full table at every node. The oracle
    /// the streaming modes are property-tested against.
    Materialized,
}

/// Tuning knobs for the executor's morsel-parallel path.
///
/// The configuration never changes *what* a plan evaluates to — all
/// [`ExecMode`]s and thread counts produce byte-identical tables and
/// errors (see [`morsel`] and `exec::vector`) — only which inner loops run
/// and how much hardware they use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for parallel operators. `1` forces the serial path.
    pub threads: usize,
    /// Minimum input rows before an operator considers going parallel.
    pub parallel_threshold: usize,
    /// Rows per morsel. Fixed morsel boundaries (independent of thread
    /// count) are what make parallel output deterministic; change this
    /// only to exercise merge logic in tests.
    pub morsel_size: usize,
    /// Evaluation strategy: vectorized (default), row streaming, or the
    /// materializing interpreter.
    pub mode: ExecMode,
}

impl Default for ExecConfig {
    /// Threads from [`std::thread::available_parallelism`], the default
    /// cardinality threshold, the default morsel size, and the vectorized
    /// mode.
    fn default() -> ExecConfig {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parallel_threshold: PARALLEL_THRESHOLD,
            morsel_size: morsel::MORSEL_SIZE,
            mode: ExecMode::default(),
        }
    }
}

impl ExecConfig {
    /// A configuration that always takes the serial path.
    pub fn serial() -> ExecConfig {
        ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        }
    }

    /// Default configuration with an explicit worker count (min 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// Read the configuration from the environment. This is the single
    /// entry point for executor env handling: [`THREADS_ENV`] sets the
    /// worker count and [`MODE_ENV`] sets the [`ExecMode`]; anything
    /// unset or unparsable keeps the default. Both variables are
    /// re-evaluated on every call (and thus on every [`execute`] /
    /// `Plan::eval`), so tests can flip them at run time.
    pub fn from_env() -> ExecConfig {
        Self::from_env_value(
            std::env::var(THREADS_ENV).ok().as_deref(),
            std::env::var(MODE_ENV).ok().as_deref(),
        )
    }

    /// Pure core of [`Self::from_env`], split out for unit testing.
    fn from_env_value(threads: Option<&str>, mode: Option<&str>) -> ExecConfig {
        let mut cfg = match threads.and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => ExecConfig::with_threads(n),
            _ => ExecConfig::default(),
        };
        cfg.mode = match mode.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            Some("streaming") => ExecMode::Streaming,
            Some("vectorized") => ExecMode::Vectorized,
            Some("materialized") => ExecMode::Materialized,
            _ => ExecMode::default(),
        };
        cfg
    }

    /// Should an operator over `rows` input rows take the parallel path?
    fn parallel_for(&self, rows: usize) -> bool {
        self.threads > 1 && rows > 0 && rows >= self.parallel_threshold
    }
}

/// The executor session API: one configured handle that evaluates any
/// number of plans. `Plan::eval`, `Plan::eval_with`,
/// `Plan::eval_materialized`, and the ETL workflow runners are all thin
/// wrappers over an `Executor`; construct one directly to pin a
/// configuration once and reuse it:
///
/// ```
/// use guava_relational::exec::{ExecMode, Executor};
/// # use guava_relational::database::Database;
/// # use guava_relational::algebra::Plan;
/// # use guava_relational::schema::{Column, Schema};
/// # use guava_relational::table::Table;
/// # use guava_relational::value::DataType;
/// # let schema = Schema::new("t", vec![Column::new("x", DataType::Int)]).unwrap();
/// # let mut db = Database::new("d");
/// # db.create_table(Table::from_rows(schema, vec![]).unwrap()).unwrap();
/// let exec = Executor::new()
///     .threads(2)
///     .morsel_size(512)
///     .mode(ExecMode::Vectorized);
/// let table = exec.execute(&Plan::scan("t"), &db).unwrap();
/// # assert_eq!(table.len(), 0);
/// ```
///
/// The builder methods move `self`, so a shared executor is cheap to
/// specialize: `base.mode(ExecMode::Streaming)` copies the handle. Like
/// [`ExecConfig`], the configuration never changes what a plan evaluates
/// to — only which physical loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Executor {
    cfg: ExecConfig,
}

impl Executor {
    /// An executor with the default configuration ([`ExecConfig::default`]).
    pub fn new() -> Executor {
        Executor::default()
    }

    /// An executor configured from the environment
    /// ([`ExecConfig::from_env`]).
    pub fn from_env() -> Executor {
        Executor {
            cfg: ExecConfig::from_env(),
        }
    }

    /// An executor over an existing configuration.
    pub fn with_config(cfg: ExecConfig) -> Executor {
        Executor { cfg }
    }

    /// Set the worker thread count (min 1; `1` forces the serial path).
    pub fn threads(mut self, n: usize) -> Executor {
        self.cfg.threads = n.max(1);
        self
    }

    /// Set the rows-per-morsel size (min 1).
    pub fn morsel_size(mut self, m: usize) -> Executor {
        self.cfg.morsel_size = m.max(1);
        self
    }

    /// Set the minimum input cardinality for operators to go parallel.
    pub fn parallel_threshold(mut self, rows: usize) -> Executor {
        self.cfg.parallel_threshold = rows;
        self
    }

    /// Set the evaluation strategy.
    pub fn mode(mut self, mode: ExecMode) -> Executor {
        self.cfg.mode = mode;
        self
    }

    /// The underlying configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Evaluate `plan` against `db` under this executor's configuration.
    pub fn execute(&self, plan: &Plan, db: &Database) -> RelResult<Table> {
        execute_with(plan, db, &self.cfg)
    }
}

/// Evaluate `plan` against `db` with the configuration from the
/// environment ([`ExecConfig::from_env`]). This is what [`Plan::eval`]
/// calls.
pub fn execute(plan: &Plan, db: &Database) -> RelResult<Table> {
    execute_with(plan, db, &ExecConfig::from_env())
}

/// Evaluate `plan` against `db` with an explicit [`ExecConfig`]. Results
/// are identical for every configuration; tests use this to pin the
/// serial or parallel path (or a specific [`ExecMode`]) without touching
/// the process environment.
pub fn execute_with(plan: &Plan, db: &Database, cfg: &ExecConfig) -> RelResult<Table> {
    // The materializing interpreter is its own self-contained recursion;
    // the streaming machinery below is never built for it.
    if cfg.mode == ExecMode::Materialized {
        return plan.interpret(db);
    }
    // A bare scan (or inline relation) at the root returns the stored table
    // itself — primary key included — exactly like the materializing
    // interpreter. With Arc-shared storage the clone is O(1).
    match plan {
        Plan::Scan(name) => return db.table(name).cloned(),
        Plan::Values { schema, rows } => return Table::from_rows(schema.clone(), rows.clone()),
        _ => {}
    }
    let (schema, exec) = compile(plan, db, *cfg)?;
    let mut op = exec.into_op(*cfg);
    let mut rows: Vec<Row> = Vec::new();
    while let Some(batch) = op.next_batch()? {
        rows.extend(batch);
    }
    // Every operator validated its own output wherever validation can fail
    // at all, so assembling the result does not re-check rows.
    Table::from_validated(schema, rows)
}

/// A compiled subtree: either a fusable pipeline (so a parent
/// Select/Project can append itself as a stage) or an opaque operator.
enum Exec<'p> {
    Pipe(PipelineOp<'p>),
    Op(BoxedOp<'p>),
}

impl<'p> Exec<'p> {
    /// View this subtree as a pipeline to fuse more stages onto. Opaque
    /// operators become the pipeline's source.
    fn into_pipeline(self) -> PipelineOp<'p> {
        match self {
            Exec::Pipe(p) => p,
            Exec::Op(op) => PipelineOp {
                source: Source::Child(op),
                stages: Vec::new(),
                programs: None,
                done: false,
            },
        }
    }

    /// Seal this subtree into an operator. A fused pipeline over shared
    /// scan storage that is still at row 0 — i.e. a Select/Project chain
    /// directly over a table — upgrades to the morsel-parallel variant
    /// when the configuration allows it for the scan's cardinality; in
    /// [`ExecMode::Vectorized`] its stages are also compiled into columnar
    /// programs here, once per plan, for both the serial and parallel
    /// variants.
    fn into_op(self, cfg: ExecConfig) -> BoxedOp<'p> {
        let p = match self {
            Exec::Op(op) => return op,
            Exec::Pipe(p) => p,
        };
        let vectorize = |stages: &[Stage<'_>]| {
            (cfg.mode == ExecMode::Vectorized).then(|| vector::compile_stages(stages))
        };
        match p {
            PipelineOp {
                source: Source::Shared { rows, pos: 0 },
                stages,
                ..
            } if !stages.is_empty() && cfg.parallel_for(rows.len()) => {
                Box::new(ParallelPipelineOp {
                    programs: vectorize(&stages),
                    rows,
                    stages,
                    cfg,
                    out: None,
                })
            }
            mut p => {
                if !p.stages.is_empty() {
                    p.programs = vectorize(&p.stages);
                }
                Box::new(p)
            }
        }
    }
}

/// Compile a plan into its output schema and physical operator tree.
/// Binding recurses children-first, so schema errors surface in the same
/// order the materializing interpreter reports them.
fn compile<'p>(plan: &'p Plan, db: &Database, cfg: ExecConfig) -> RelResult<(Schema, Exec<'p>)> {
    Ok(match plan {
        Plan::Scan(name) => {
            let t = db.table(name)?;
            (
                t.schema().clone(),
                Exec::Pipe(PipelineOp::over(t.shared_rows())),
            )
        }
        Plan::Values { schema, rows } => {
            // Inline relations validate eagerly — duplicate-key checks
            // included — mirroring `Table::from_rows` in the interpreter.
            let t = Table::from_rows(schema.clone(), rows.clone())?;
            (
                t.schema().clone(),
                Exec::Pipe(PipelineOp::over(t.shared_rows())),
            )
        }
        Plan::Select { input, predicate } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = keyless(in_schema.clone());
            let mut pipe = child.into_pipeline();
            pipe.stages.push(Stage::Filter {
                predicate,
                schema: in_schema,
            });
            (out, Exec::Pipe(pipe))
        }
        Plan::Project { input, columns } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = project_output_schema(&in_schema, columns)?;
            let mut pipe = child.into_pipeline();
            pipe.stages.push(Stage::Map {
                exprs: columns,
                in_schema,
                out_schema: out.clone(),
            });
            (out, Exec::Pipe(pipe))
        }
        Plan::Rename {
            input,
            table,
            columns,
        } => {
            // Pure metadata: rows pass through untouched, so Rename costs
            // nothing at run time.
            let (in_schema, child) = compile(input, db, cfg)?;
            let out = rename_output_schema(&in_schema, table.as_deref(), columns)?;
            (out, child)
        }
        Plan::Join {
            left,
            right,
            on,
            kind,
        } => {
            let (ls, lchild) = compile(left, db, cfg)?;
            let (rs, rchild) = compile(right, db, cfg)?;
            let l_idx = resolve_columns(&ls, on.iter().map(|(l, _)| l))?;
            let r_idx = resolve_columns(&rs, on.iter().map(|(_, r)| r))?;
            let schema = join_output_schema(&ls, &rs, *kind)?;
            let op = JoinOp {
                left: RowsIn::from_exec(lchild, cfg),
                build: Some(RowsIn::from_exec(rchild, cfg)),
                l_idx,
                r_idx,
                kind: *kind,
                l_arity: ls.arity(),
                r_arity: rs.arity(),
                right: Gathered::Owned(Vec::new()),
                index: HashMap::new(),
                cfg,
                par_out: None,
                done: false,
            };
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Union { inputs } => {
            let mut iter = inputs.iter();
            let first = iter
                .next()
                .ok_or_else(|| RelError::Plan("union of zero inputs".into()))?;
            let (first_schema, first_child) = compile(first, db, cfg)?;
            let schema = keyless(first_schema);
            let mut children = vec![first_child.into_op(cfg)];
            for p in iter {
                let (s, c) = compile(p, db, cfg)?;
                check_union_compatible(&schema, &s)?;
                children.push(c.into_op(cfg));
            }
            // Later inputs may be nullable where the leading schema says
            // NOT NULL; re-check rows only when that can actually reject.
            let check_rows = schema.columns().iter().any(|c| !c.nullable);
            let op = UnionOp {
                children,
                at: 0,
                schema: schema.clone(),
                check_rows,
            };
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Distinct { input } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let op = DistinctOp {
                child: child.into_op(cfg),
                seen: HashSet::new(),
            };
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Unpivot {
            input,
            keys,
            attr_col,
            val_col,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let key_idx = resolve_columns(&s, keys)?;
            let data_idx: Vec<usize> = (0..s.arity()).filter(|i| !key_idx.contains(i)).collect();
            let schema = unpivot_output_schema(&s, &key_idx, attr_col, val_col)?;
            let op = UnpivotOp {
                child: RowsIn::from_exec(child, cfg),
                in_schema: s,
                key_idx,
                data_idx,
            };
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Pivot {
            input,
            keys,
            attr_col,
            val_col,
            attrs,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let key_idx = resolve_columns(&s, keys)?;
            let attr_idx = resolve_column(&s, attr_col)?;
            let val_idx = resolve_column(&s, val_col)?;
            let schema = pivot_output_schema(&s, &key_idx, attrs)?;
            let op = BlockingOp::new(RowsIn::from_exec(child, cfg), move |rows| {
                let input = rows.as_slice();
                if cfg.parallel_for(input.len()) {
                    morsel::par_pivot(input, &key_idx, attr_idx, val_idx, attrs, cfg)
                } else {
                    pivot_rows(input, &key_idx, attr_idx, val_idx, attrs)
                }
            });
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::AggregateBy {
            input,
            group_by,
            aggregates,
        } => {
            let (s, child) = compile(input, db, cfg)?;
            let g_idx = resolve_columns(&s, group_by)?;
            let agg_idx = resolve_aggregate_columns(&s, aggregates)?;
            let schema = aggregate_output_schema(&s, &g_idx, &agg_idx, aggregates)?;
            // Integer sums are wrapping, hence associative; `f64` sums are
            // not, so SUM/AVG over a FLOAT column pins the serial kernel to
            // keep parallel results bit-identical to serial ones.
            let associative =
                aggregates
                    .iter()
                    .zip(&agg_idx)
                    .all(|(a, idx)| match (&a.func, idx) {
                        (AggFunc::Sum(_) | AggFunc::Avg(_), Some(i)) => {
                            s.columns()[*i].data_type != DataType::Float
                        }
                        _ => true,
                    });
            let out_schema = schema.clone();
            let op = BlockingOp::new(RowsIn::from_exec(child, cfg), move |rows| {
                let input = rows.as_slice();
                let out = if associative && cfg.parallel_for(input.len()) {
                    morsel::par_aggregate(input, &g_idx, &agg_idx, aggregates, cfg)
                } else {
                    aggregate_rows(input, &g_idx, &agg_idx, aggregates)
                };
                // Validate emitted rows exactly where the materializing
                // interpreter's `from_rows` does — e.g. SUM over a TEXT
                // column emits INT into a TEXT-typed output column.
                for r in &out {
                    out_schema.check_row(r)?;
                }
                Ok(out)
            });
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Sort { input, by } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let idxs = resolve_columns(&schema, by)?;
            let op = BlockingOp::new(RowsIn::from_exec(child, cfg), move |rows| {
                let mut rows = rows.into_rows();
                sort_rows(&mut rows, &idxs);
                Ok(rows)
            });
            (schema, Exec::Op(Box::new(op)))
        }
        Plan::Limit { input, n } => {
            let (in_schema, child) = compile(input, db, cfg)?;
            let schema = keyless(in_schema);
            let op = LimitOp {
                child: child.into_op(cfg),
                remaining: *n,
                done: false,
            };
            (schema, Exec::Op(Box::new(op)))
        }
    })
}

/// Where a pipeline's rows come from.
enum Source<'p> {
    /// Zero-copy view over a table's shared row storage.
    Shared { rows: Arc<Vec<Row>>, pos: usize },
    /// Any upstream operator that is not fusable.
    Child(BoxedOp<'p>),
}

/// Rows feeding a non-fused operator (join side, blocking input, unpivot).
/// A bare scan stays a zero-copy handle on the table's shared storage —
/// the consumer reads borrowed rows and never pays for copying its input,
/// matching what the interpreter gets from `Table::rows()`.
enum RowsIn<'p> {
    Shared { rows: Arc<Vec<Row>>, pos: usize },
    Child(BoxedOp<'p>),
}

impl<'p> RowsIn<'p> {
    fn from_exec(e: Exec<'p>, cfg: ExecConfig) -> RowsIn<'p> {
        match e {
            Exec::Pipe(PipelineOp {
                source: Source::Shared { rows, pos },
                stages,
                ..
            }) if stages.is_empty() => RowsIn::Shared { rows, pos },
            other => RowsIn::Child(other.into_op(cfg)),
        }
    }

    /// Gather the entire input at once (blocking kernels, join build side).
    fn gather(self) -> RelResult<Gathered> {
        match self {
            RowsIn::Shared { rows, .. } => Ok(Gathered::Shared(rows)),
            RowsIn::Child(mut op) => {
                let mut rows = Vec::new();
                while let Some(batch) = op.next_batch()? {
                    rows.extend(batch);
                }
                Ok(Gathered::Owned(rows))
            }
        }
    }
}

/// A fully-gathered input: still zero-copy when it came straight off a
/// scan. Kernels that only read borrow the slice; kernels that need
/// ownership (sort) unwrap the `Arc`, cloning only when the storage is
/// shared — the same cost `Table::into_rows` pays in the interpreter.
enum Gathered {
    Shared(Arc<Vec<Row>>),
    Owned(Vec<Row>),
}

impl Gathered {
    fn as_slice(&self) -> &[Row] {
        match self {
            Gathered::Shared(rows) => rows,
            Gathered::Owned(rows) => rows,
        }
    }

    fn into_rows(self) -> Vec<Row> {
        match self {
            Gathered::Shared(rows) => {
                Arc::try_unwrap(rows).unwrap_or_else(|shared| (*shared).clone())
            }
            Gathered::Owned(rows) => rows,
        }
    }
}

/// One fused per-row transform.
enum Stage<'p> {
    /// σ — drop rows failing the predicate (from `Plan::Select`).
    Filter { predicate: &'p Expr, schema: Schema },
    /// π — evaluate expressions into a fresh row (from `Plan::Project`).
    /// Output rows are validated against `out_schema`, exactly as
    /// `Table::from_rows` would in the interpreter.
    Map {
        exprs: &'p [(String, Expr)],
        in_schema: Schema,
        out_schema: Schema,
    },
}

/// A row travelling through fused stages: borrowed from shared storage
/// until some stage builds a fresh row, and cloned only if it survives to
/// the output batch.
enum Flow<'a> {
    Borrowed(&'a Row),
    Owned(Row),
}

impl Flow<'_> {
    fn as_slice(&self) -> &[Value] {
        match self {
            Flow::Borrowed(r) => r,
            Flow::Owned(r) => r,
        }
    }

    fn into_row(self) -> Row {
        match self {
            Flow::Borrowed(r) => r.clone(),
            Flow::Owned(r) => r,
        }
    }
}

fn apply_stages(stages: &[Stage], mut row: Flow<'_>) -> RelResult<Option<Row>> {
    for stage in stages {
        match stage {
            Stage::Filter { predicate, schema } => {
                if !predicate.matches(schema, row.as_slice())? {
                    return Ok(None);
                }
            }
            Stage::Map {
                exprs,
                in_schema,
                out_schema,
            } => {
                let input = row.as_slice();
                let mut out = Vec::with_capacity(exprs.len());
                for (_, e) in exprs.iter() {
                    out.push(e.eval(in_schema, input)?);
                }
                out_schema.check_row(&out)?;
                row = Flow::Owned(out);
            }
        }
    }
    Ok(Some(row.into_row()))
}

/// Fused Select/Project chain over a scan or an opaque child: one pass per
/// row (or one columnar pass per batch, when `programs` is compiled), no
/// intermediate tables.
struct PipelineOp<'p> {
    source: Source<'p>,
    stages: Vec<Stage<'p>>,
    /// Columnar stage programs, compiled by [`Exec::into_op`] in
    /// [`ExecMode::Vectorized`]. Only shared-storage batches run them:
    /// a `Source::Child` feeds batches whose rows the row path can move
    /// rather than clone, so the fallback rule (DESIGN.md §11) keeps
    /// child-fed pipelines on `apply_stages`.
    programs: Option<Vec<vector::StageProg>>,
    done: bool,
}

impl<'p> PipelineOp<'p> {
    fn over(rows: Arc<Vec<Row>>) -> PipelineOp<'p> {
        PipelineOp {
            source: Source::Shared { rows, pos: 0 },
            stages: Vec::new(),
            programs: None,
            done: false,
        }
    }
}

impl Operator for PipelineOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let PipelineOp {
            source,
            stages,
            programs,
            done,
        } = self;
        loop {
            match source {
                Source::Shared { rows, pos } => {
                    if *pos >= rows.len() {
                        *done = true;
                        return Ok(None);
                    }
                    let end = usize::min(*pos + BATCH_SIZE, rows.len());
                    let slice = &rows[*pos..end];
                    *pos = end;
                    if stages.is_empty() {
                        // Bare scan feeding a parent that consumes owned
                        // batches (union, distinct, limit): rows leave
                        // shared storage here. Joins, blocking operators,
                        // and unpivot take a `RowsIn` instead and read the
                        // storage in place.
                        return Ok(Some(slice.to_vec()));
                    }
                    if let Some(progs) = programs {
                        let out = vector::run_batch(stages, progs, slice)?;
                        if !out.is_empty() {
                            return Ok(Some(out));
                        }
                        continue;
                    }
                    let mut out = Vec::with_capacity(slice.len());
                    for row in slice {
                        if let Some(r) = apply_stages(stages, Flow::Borrowed(row))? {
                            out.push(r);
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(out));
                    }
                }
                Source::Child(child) => match child.next_batch()? {
                    None => {
                        *done = true;
                        return Ok(None);
                    }
                    Some(batch) => {
                        if stages.is_empty() {
                            return Ok(Some(batch));
                        }
                        let mut out = Vec::with_capacity(batch.len());
                        for row in batch {
                            if let Some(r) = apply_stages(stages, Flow::Owned(row))? {
                                out.push(r);
                            }
                        }
                        if !out.is_empty() {
                            return Ok(Some(out));
                        }
                    }
                },
            }
        }
    }
}

/// Morsel-parallel variant of `PipelineOp`: runs the fused stages over
/// shared scan storage on the work-stealing scheduler at first poll, then
/// re-emits the deterministically merged result in `BATCH_SIZE` chunks.
/// Only built by [`Exec::into_op`] when [`ExecConfig::parallel_for`] says
/// the scan is large enough.
struct ParallelPipelineOp<'p> {
    rows: Arc<Vec<Row>>,
    stages: Vec<Stage<'p>>,
    /// Columnar stage programs (see [`PipelineOp::programs`]); each morsel
    /// runs them as one batch, so the morsel-order merge rules are
    /// untouched.
    programs: Option<Vec<vector::StageProg>>,
    cfg: ExecConfig,
    out: Option<std::vec::IntoIter<Row>>,
}

impl Operator for ParallelPipelineOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        if self.out.is_none() {
            self.out = Some(
                morsel::par_pipeline(&self.rows, &self.stages, self.programs.as_deref(), self.cfg)?
                    .into_iter(),
            );
        }
        let out = self.out.as_mut().expect("pipeline ran above");
        let batch: Batch = out.by_ref().take(BATCH_SIZE).collect();
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

/// Hash join: gathers the build (right) side into an index on first poll
/// — zero-copy when it is a bare scan — then probes the left side batch by
/// batch, reading probe rows in place when they too come off a scan.
/// Large inputs parallelize both phases: the index merges morsel-local
/// maps built concurrently, and a shared-storage probe side is probed
/// morsel-parallel with results merged in morsel order.
struct JoinOp<'p> {
    left: RowsIn<'p>,
    /// Build-side input; consumed into `right`/`index` on first poll.
    build: Option<RowsIn<'p>>,
    l_idx: Vec<usize>,
    r_idx: Vec<usize>,
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
    right: Gathered,
    /// Join key → positions in `right`. NULL keys are absent (SQL: NULL
    /// never matches).
    index: HashMap<Vec<Value>, Vec<usize>>,
    cfg: ExecConfig,
    /// Pre-computed output when the probe phase ran morsel-parallel.
    par_out: Option<std::vec::IntoIter<Row>>,
    done: bool,
}

/// Probe one chunk of left rows against the build index.
#[allow(clippy::too_many_arguments)]
fn probe_rows(
    lrows: &[Row],
    index: &HashMap<Vec<Value>, Vec<usize>>,
    right: &[Row],
    l_idx: &[usize],
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
) -> Batch {
    let mut out: Batch = Vec::with_capacity(lrows.len());
    for lrow in lrows {
        let key: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
        let hit = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            index.get(&key)
        };
        match hit {
            Some(positions) => {
                for &ri in positions {
                    let rrow = &right[ri];
                    let mut row = Vec::with_capacity(l_arity + r_arity);
                    row.extend(lrow.iter().cloned());
                    row.extend(rrow.iter().cloned());
                    out.push(row);
                }
            }
            None if kind == JoinKind::Left => {
                let mut row = Vec::with_capacity(l_arity + r_arity);
                row.extend(lrow.iter().cloned());
                row.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(row);
            }
            None => {}
        }
    }
    out
}

impl Operator for JoinOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if let Some(build) = self.build.take() {
            self.right = build.gather()?;
            let rrows = self.right.as_slice();
            if self.cfg.parallel_for(rrows.len()) {
                self.index = morsel::par_build_index(rrows, &self.r_idx, self.cfg);
            } else {
                for (at, row) in rrows.iter().enumerate() {
                    let key: Vec<Value> = self.r_idx.iter().map(|&i| row[i].clone()).collect();
                    if !key.iter().any(|v| v.is_null()) {
                        self.index.entry(key).or_default().push(at);
                    }
                }
            }
            // A large shared-storage probe side is probed whole, morsel-
            // parallel; the merged output then streams out in batches.
            if let RowsIn::Shared { rows, pos } = &mut self.left {
                if *pos == 0 && self.cfg.parallel_for(rows.len()) {
                    let out = morsel::par_probe(
                        rows,
                        &self.index,
                        self.right.as_slice(),
                        &self.l_idx,
                        self.kind,
                        self.l_arity,
                        self.r_arity,
                        self.cfg,
                    );
                    *pos = rows.len();
                    self.par_out = Some(out.into_iter());
                }
            }
        }
        if let Some(out) = &mut self.par_out {
            let batch: Batch = out.by_ref().take(BATCH_SIZE).collect();
            if batch.is_empty() {
                self.done = true;
                return Ok(None);
            }
            return Ok(Some(batch));
        }
        let JoinOp {
            left,
            l_idx,
            kind,
            l_arity,
            r_arity,
            right,
            index,
            done,
            ..
        } = self;
        loop {
            let out = match left {
                RowsIn::Shared { rows, pos } => {
                    if *pos >= rows.len() {
                        *done = true;
                        return Ok(None);
                    }
                    let end = usize::min(*pos + BATCH_SIZE, rows.len());
                    let slice = &rows[*pos..end];
                    *pos = end;
                    probe_rows(
                        slice,
                        index,
                        right.as_slice(),
                        l_idx,
                        *kind,
                        *l_arity,
                        *r_arity,
                    )
                }
                RowsIn::Child(op) => {
                    let Some(batch) = op.next_batch()? else {
                        *done = true;
                        return Ok(None);
                    };
                    // Owned probe rows can be moved into the output when
                    // they produce exactly one row (single match, or the
                    // NULL pad of a left join).
                    let mut out: Batch = Vec::with_capacity(batch.len());
                    for lrow in batch {
                        let key: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
                        let hit = if key.iter().any(|v| v.is_null()) {
                            None
                        } else {
                            index.get(&key)
                        };
                        match hit {
                            Some(positions) if positions.len() == 1 => {
                                let rrow = &right.as_slice()[positions[0]];
                                let mut row = lrow;
                                row.reserve(*r_arity);
                                row.extend(rrow.iter().cloned());
                                out.push(row);
                            }
                            Some(positions) => {
                                for &ri in positions {
                                    let rrow = &right.as_slice()[ri];
                                    let mut row = Vec::with_capacity(*l_arity + *r_arity);
                                    row.extend(lrow.iter().cloned());
                                    row.extend(rrow.iter().cloned());
                                    out.push(row);
                                }
                            }
                            None if *kind == JoinKind::Left => {
                                let mut row = lrow;
                                row.reserve(*r_arity);
                                row.extend(std::iter::repeat_n(Value::Null, *r_arity));
                                out.push(row);
                            }
                            None => {}
                        }
                    }
                    out
                }
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

/// Streaming bag union: children drain in order, batches pass straight
/// through. Rows from non-leading inputs are re-checked against the output
/// schema only when some column is NOT NULL (the one way union rows can be
/// rejected, since union compatibility already fixed the types).
struct UnionOp<'p> {
    children: Vec<BoxedOp<'p>>,
    at: usize,
    schema: Schema,
    check_rows: bool,
}

impl Operator for UnionOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        while self.at < self.children.len() {
            match self.children[self.at].next_batch()? {
                Some(batch) => {
                    if self.check_rows && self.at > 0 {
                        for row in &batch {
                            self.schema.check_row(row)?;
                        }
                    }
                    return Ok(Some(batch));
                }
                None => self.at += 1,
            }
        }
        Ok(None)
    }
}

/// Streaming δ: forwards first occurrences, keeping a seen-set across
/// batches.
struct DistinctOp<'p> {
    child: BoxedOp<'p>,
    seen: HashSet<Row>,
}

impl Operator for DistinctOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            for row in batch {
                if self.seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

/// Streaming un-pivot: each input chunk expands independently into EAV
/// triples, read in place when the input is a bare scan.
struct UnpivotOp<'p> {
    child: RowsIn<'p>,
    in_schema: Schema,
    key_idx: Vec<usize>,
    data_idx: Vec<usize>,
}

impl Operator for UnpivotOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        let UnpivotOp {
            child,
            in_schema,
            key_idx,
            data_idx,
        } = self;
        loop {
            let out = match child {
                RowsIn::Shared { rows, pos } => {
                    if *pos >= rows.len() {
                        return Ok(None);
                    }
                    let end = usize::min(*pos + BATCH_SIZE, rows.len());
                    let slice = &rows[*pos..end];
                    *pos = end;
                    unpivot_rows(in_schema, slice, key_idx, data_idx)
                }
                RowsIn::Child(op) => {
                    let Some(batch) = op.next_batch()? else {
                        return Ok(None);
                    };
                    unpivot_rows(in_schema, &batch, key_idx, data_idx)
                }
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

/// A one-shot row kernel shared with the interpreter (pivot, aggregate,
/// sort), consuming the gathered child output.
type RowKernel<'p> = Box<dyn FnOnce(Gathered) -> RelResult<Vec<Row>> + 'p>;

/// Pivot, aggregation, and sort cannot stream: this operator gathers the
/// child's full output — without copying it when the child is a bare scan
/// — runs the row kernel shared with the interpreter, and re-emits the
/// result in batches.
struct BlockingOp<'p> {
    input: Option<RowsIn<'p>>,
    kernel: Option<RowKernel<'p>>,
    output: std::vec::IntoIter<Row>,
}

impl<'p> BlockingOp<'p> {
    fn new(
        input: RowsIn<'p>,
        kernel: impl FnOnce(Gathered) -> RelResult<Vec<Row>> + 'p,
    ) -> BlockingOp<'p> {
        BlockingOp {
            input: Some(input),
            kernel: Some(Box::new(kernel)),
            output: Vec::new().into_iter(),
        }
    }
}

impl Operator for BlockingOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        if let Some(input) = self.input.take() {
            let gathered = input.gather()?;
            let kernel = self.kernel.take().expect("kernel runs once");
            self.output = kernel(gathered)?.into_iter();
        }
        let batch: Batch = self.output.by_ref().take(BATCH_SIZE).collect();
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

/// Emits at most `n` rows — but still drains its child. The materializing
/// interpreter evaluates the full input before truncating, so errors past
/// the cutoff must surface here too.
struct LimitOp<'p> {
    child: BoxedOp<'p>,
    remaining: usize,
    done: bool,
}

impl Operator for LimitOp<'_> {
    fn next_batch(&mut self) -> RelResult<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let Some(mut batch) = self.child.next_batch()? else {
                self.done = true;
                return Ok(None);
            };
            if self.remaining == 0 {
                continue; // draining for error parity; nothing left to emit
            }
            if batch.len() > self.remaining {
                batch.truncate(self.remaining);
            }
            self.remaining -= batch.len();
            return Ok(Some(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{AggFunc, Aggregate};
    use crate::schema::Column;
    use crate::value::DataType;

    fn wide_db(n: i64) -> Database {
        let schema = Schema::new(
            "t",
            vec![
                Column::required("id", DataType::Int),
                Column::new("grp", DataType::Text),
                Column::new("x", DataType::Int),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::text(if i % 2 == 0 { "even" } else { "odd" }),
                    Value::Int(i % 7),
                ]
            })
            .collect();
        let mut db = Database::new("d");
        db.create_table(Table::from_rows(schema, rows).unwrap())
            .unwrap();
        db
    }

    fn assert_agrees(plan: &Plan, db: &Database) {
        let streamed = plan.eval(db);
        let materialized = plan.eval_materialized(db);
        match (streamed, materialized) {
            (Ok(s), Ok(m)) => assert_eq!(s, m, "streamed != materialized for {plan:?}"),
            (Err(s), Err(m)) => assert_eq!(s, m, "errors differ for {plan:?}"),
            (s, m) => panic!("evaluators disagree for {plan:?}: {s:?} vs {m:?}"),
        }
    }

    #[test]
    fn root_scan_shares_storage() {
        let db = wide_db(100);
        let t = Plan::scan("t").eval(&db).unwrap();
        // Same Arc: root scans are O(1), not copies.
        assert!(Arc::ptr_eq(
            &t.shared_rows(),
            &db.table("t").unwrap().shared_rows()
        ));
        assert_eq!(t.schema().primary_key(), &[0]);
    }

    #[test]
    fn fused_pipeline_matches_oracle_across_batches() {
        // > BATCH_SIZE rows so the pipeline crosses batch boundaries.
        let db = wide_db(3000);
        let plan = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(2i64)))
            .project(vec![
                ("id".to_owned(), Expr::col("id")),
                ("x2".to_owned(), Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("x2").lt(Expr::lit(10i64)));
        assert_agrees(&plan, &db);
    }

    #[test]
    fn pipeline_emits_bounded_batches() {
        let db = wide_db(2500);
        let plan = Plan::scan("t").select(Expr::lit(true));
        let (_, exec) = compile(&plan, &db, ExecConfig::serial()).unwrap();
        let mut op = exec.into_op(ExecConfig::serial());
        let mut total = 0;
        while let Some(batch) = op.next_batch().unwrap() {
            assert!(!batch.is_empty() && batch.len() <= BATCH_SIZE);
            total += batch.len();
        }
        assert_eq!(total, 2500);
    }

    #[test]
    fn join_union_distinct_agree() {
        let db = wide_db(500);
        let join = Plan::scan("t").join(
            Plan::scan("t").project_cols(&["id", "grp"]),
            vec![("id", "id")],
            JoinKind::Inner,
        );
        assert_agrees(&join, &db);

        let left = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(3i64)))
            .join(
                Plan::scan("t").select(Expr::col("x").lt(Expr::lit(3i64))),
                vec![("id", "id")],
                JoinKind::Left,
            );
        assert_agrees(&left, &db);

        let union = Plan::union(vec![
            Plan::scan("t").project_cols(&["grp"]),
            Plan::scan("t").project_cols(&["grp"]),
        ])
        .distinct();
        assert_agrees(&union, &db);
    }

    #[test]
    fn blocking_operators_agree() {
        let db = wide_db(300);
        let agg = Plan::scan("t")
            .aggregate(
                &["grp"],
                vec![
                    Aggregate {
                        func: AggFunc::CountAll,
                        alias: "n".into(),
                    },
                    Aggregate {
                        func: AggFunc::Sum("x".into()),
                        alias: "sx".into(),
                    },
                ],
            )
            .sort_by(&["grp"]);
        assert_agrees(&agg, &db);

        let eav = Plan::Unpivot {
            input: Box::new(Plan::scan("t")),
            keys: vec!["id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
        };
        let roundtrip = Plan::Pivot {
            input: Box::new(eav.clone()),
            keys: vec!["id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
            attrs: vec![("grp".into(), DataType::Text), ("x".into(), DataType::Int)],
        };
        assert_agrees(&eav, &db);
        assert_agrees(&roundtrip, &db);
    }

    #[test]
    fn binding_errors_match_interpreter() {
        let db = wide_db(10);
        assert_agrees(&Plan::scan("nope"), &db);
        assert_agrees(&Plan::scan("t").sort_by(&["nope"]), &db);
        assert_agrees(
            &Plan::scan("t").join(Plan::scan("t"), vec![("nope", "id")], JoinKind::Inner),
            &db,
        );
        assert_agrees(
            &Plan::union(vec![
                Plan::scan("t").project_cols(&["id"]),
                Plan::scan("t").project_cols(&["grp"]),
            ]),
            &db,
        );
        assert_agrees(&Plan::Union { inputs: vec![] }, &db);
    }

    #[test]
    fn row_level_errors_match_interpreter() {
        let db = wide_db(10);
        // Division by zero deep in the data: x is 0 for id 0 and 7.
        let plan = Plan::scan("t").project(vec![(
            "q".to_owned(),
            Expr::lit(100i64).div(Expr::col("x")),
        )]);
        assert_agrees(&plan, &db);
        // Unknown column inside a predicate only fails when a row is
        // actually evaluated — over an empty input both evaluators succeed.
        let empty = Plan::scan("t")
            .select(Expr::lit(false))
            .select(Expr::col("ghost").is_null());
        assert_agrees(&empty, &db);
    }

    #[test]
    fn limit_drains_input_for_error_parity() {
        let db = wide_db(10);
        // The failing row (x == 0 at id 7) lies beyond the limit cutoff;
        // the interpreter still reports it, so the executor must too.
        let plan = Plan::scan("t")
            .select(Expr::col("id").ge(Expr::lit(1i64)))
            .project(vec![(
                "q".to_owned(),
                Expr::lit(100i64).div(Expr::col("x")),
            )])
            .limit(2);
        assert_agrees(&plan, &db);
        assert!(plan.eval(&db).is_err());
        // And a plain limit still truncates correctly.
        assert_agrees(&Plan::scan("t").project_cols(&["id"]).limit(3), &db);
    }

    #[test]
    fn distinct_dedupes_across_batch_boundaries() {
        let db = wide_db(2600);
        let plan = Plan::scan("t").project_cols(&["x"]).distinct();
        let t = plan.eval(&db).unwrap();
        assert_eq!(t.len(), 7);
        assert_agrees(&plan, &db);
    }

    #[test]
    fn values_root_and_intermediate() {
        let db = wide_db(5);
        let schema = Schema::new("v", vec![Column::required("k", DataType::Int)])
            .unwrap()
            .with_primary_key(&["k"])
            .unwrap();
        let values = Plan::Values {
            schema: schema.clone(),
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let root = values.eval(&db).unwrap();
        assert_eq!(root.schema().primary_key(), &[0]);
        assert_agrees(&values, &db);
        // Duplicate keys in an inline relation fail in both evaluators.
        let dup = Plan::Values {
            schema,
            rows: vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        };
        assert_agrees(&dup, &db);
        assert_agrees(&dup.clone().project_cols(&["k"]), &db);
    }

    #[test]
    fn env_config_parses_threads_and_mode() {
        let cfg = ExecConfig::from_env_value(Some("3"), Some("materialized"));
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.mode, ExecMode::Materialized);
        // Mode matching trims whitespace and ignores case.
        let cfg = ExecConfig::from_env_value(None, Some("  Streaming "));
        assert_eq!(cfg.mode, ExecMode::Streaming);
        assert_eq!(
            ExecConfig::from_env_value(None, Some("vectorized")).mode,
            ExecMode::Vectorized
        );
        // Unset or unparsable values keep the defaults.
        let dflt = ExecConfig::default();
        for bad in [None, Some("0"), Some("fast"), Some("")] {
            assert_eq!(ExecConfig::from_env_value(bad, None).threads, dflt.threads);
        }
        for bad in [None, Some("rowwise"), Some("")] {
            assert_eq!(
                ExecConfig::from_env_value(None, bad).mode,
                ExecMode::Vectorized
            );
        }
    }

    #[test]
    fn executor_builder_clamps_and_composes() {
        let exec = Executor::new()
            .threads(0)
            .morsel_size(0)
            .parallel_threshold(17)
            .mode(ExecMode::Streaming);
        assert_eq!(exec.config().threads, 1);
        assert_eq!(exec.config().morsel_size, 1);
        assert_eq!(exec.config().parallel_threshold, 17);
        assert_eq!(exec.config().mode, ExecMode::Streaming);
        // Builder methods copy the handle: specializing one executor
        // leaves the original untouched.
        let base = Executor::new().threads(4);
        let mat = base.mode(ExecMode::Materialized);
        assert_eq!(base.config().mode, ExecMode::Vectorized);
        assert_eq!(mat.config().mode, ExecMode::Materialized);
        assert_eq!(mat.config().threads, 4);
        assert_eq!(
            Executor::with_config(ExecConfig::serial()).config(),
            &ExecConfig::serial()
        );
    }

    #[test]
    fn all_modes_agree_on_a_fused_pipeline() {
        let db = wide_db(2000);
        let plan = Plan::scan("t")
            .select(Expr::col("x").ge(Expr::lit(1i64)))
            .project(vec![
                ("id".to_owned(), Expr::col("id")),
                ("x2".to_owned(), Expr::col("x").mul(Expr::lit(2i64))),
            ])
            .select(Expr::col("x2").lt(Expr::lit(12i64)));
        let oracle = Executor::new()
            .mode(ExecMode::Materialized)
            .execute(&plan, &db)
            .unwrap();
        for mode in [ExecMode::Streaming, ExecMode::Vectorized] {
            for threads in [1, 3] {
                let exec = Executor::new()
                    .threads(threads)
                    .parallel_threshold(1)
                    .morsel_size(64)
                    .mode(mode);
                let got = exec.execute(&plan, &db).unwrap();
                assert_eq!(got, oracle, "{mode:?} with {threads} threads");
            }
        }
    }
}
