//! Relational algebra plans and their evaluator.
//!
//! GUAVA translates a query against a g-tree into a plan against the
//! contributor's physical database (Section 3.2); MultiClass compiles
//! studies into a chain of plans executed by ETL components (Figure 6).
//! The operator set is deliberately the paper's target language:
//! conjunctive queries with union, plus the pivot/un-pivot operators that
//! the Generic design pattern requires, plus aggregation for study reports.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::schema::{Column, Schema};
use crate::table::{Row, Table};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Join variants. `Left` keeps unmatched left rows with NULL right columns —
/// needed when a form's optional sub-table (Split pattern) has no row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
}

/// An aggregate function over a column (or `*` for `CountAll`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggFunc {
    CountAll,
    /// COUNT(col): non-null values.
    Count(String),
    Sum(String),
    Avg(String),
    Min(String),
    Max(String),
}

/// One output column of an aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    pub func: AggFunc,
    pub alias: String,
}

/// A logical query plan. Evaluation is bottom-up and materializing: each
/// node produces a [`Table`]. That matches the paper's ETL model, where each
/// component writes a temporary database read by the next (Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    /// Read a named table from the database.
    Scan(String),
    /// Inline constant relation.
    Values { schema: Schema, rows: Vec<Row> },
    /// σ: keep rows satisfying the predicate.
    Select { input: Box<Plan>, predicate: Expr },
    /// π with computed columns: each output column is `(alias, expr)`.
    Project {
        input: Box<Plan>,
        columns: Vec<(String, Expr)>,
    },
    /// ρ: rename the relation and/or individual columns.
    Rename {
        input: Box<Plan>,
        table: Option<String>,
        columns: Vec<(String, String)>,
    },
    /// Equi-join on pairs of column names `(left_col, right_col)`.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(String, String)>,
        kind: JoinKind,
    },
    /// ∪ (bag union; wrap in Distinct for set union). Inputs must be
    /// union-compatible; the left schema's names win.
    Union { inputs: Vec<Plan> },
    /// δ: remove duplicate rows.
    Distinct { input: Box<Plan> },
    /// Un-pivot (the Generic pattern's *encode* direction): turn wide rows
    /// into Entity–Attribute–Value triples. `keys` are carried through;
    /// every other column becomes one (attribute, value-as-text) row.
    Unpivot {
        input: Box<Plan>,
        keys: Vec<String>,
        attr_col: String,
        val_col: String,
    },
    /// Pivot (the Generic pattern's *decode* direction): fold EAV triples
    /// back into wide rows. `attrs` fixes the output columns and their
    /// types; values are parsed from text. Missing attributes yield NULL.
    Pivot {
        input: Box<Plan>,
        keys: Vec<String>,
        attr_col: String,
        val_col: String,
        attrs: Vec<(String, DataType)>,
    },
    /// γ: group by columns and compute aggregates.
    AggregateBy {
        input: Box<Plan>,
        group_by: Vec<String>,
        aggregates: Vec<Aggregate>,
    },
    /// Sort by columns (all ascending; NULLs first via total order).
    Sort { input: Box<Plan>, by: Vec<String> },
    /// Keep the first `n` rows.
    Limit { input: Box<Plan>, n: usize },
}

impl Plan {
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan(table.into())
    }

    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, columns: Vec<(impl Into<String>, Expr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        }
    }

    /// Shorthand projection keeping named columns untouched.
    pub fn project_cols(self, cols: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: cols
                .iter()
                .map(|c| ((*c).to_owned(), Expr::col(*c)))
                .collect(),
        }
    }

    pub fn rename_table(self, table: impl Into<String>) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            table: Some(table.into()),
            columns: Vec::new(),
        }
    }

    pub fn rename_columns(self, renames: Vec<(impl Into<String>, impl Into<String>)>) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            table: None,
            columns: renames
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    pub fn join(self, right: Plan, on: Vec<(&str, &str)>, kind: JoinKind) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .into_iter()
                .map(|(a, b)| (a.to_owned(), b.to_owned()))
                .collect(),
            kind,
        }
    }

    pub fn union(inputs: Vec<Plan>) -> Plan {
        Plan::Union { inputs }
    }

    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    pub fn sort_by(self, by: &[&str]) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by: by.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    pub fn aggregate(self, group_by: &[&str], aggregates: Vec<Aggregate>) -> Plan {
        Plan::AggregateBy {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| (*s).to_owned()).collect(),
            aggregates,
        }
    }

    /// Names of every base table this plan scans (transitively).
    pub fn scanned_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_scans(&mut |t| {
            if !out.contains(&t) {
                out.push(t);
            }
        });
        out
    }

    fn walk_scans<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Plan::Scan(t) => f(t),
            Plan::Values { .. } => {}
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Distinct { input }
            | Plan::Unpivot { input, .. }
            | Plan::Pivot { input, .. }
            | Plan::AggregateBy { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.walk_scans(f),
            Plan::Join { left, right, .. } => {
                left.walk_scans(f);
                right.walk_scans(f);
            }
            Plan::Union { inputs } => inputs.iter().for_each(|p| p.walk_scans(f)),
        }
    }

    /// Evaluate the plan against a database.
    ///
    /// A thin wrapper over [`Executor::from_env`](crate::exec::Executor):
    /// execution routes through the batch executor ([`crate::exec`]) in
    /// its environment-selected mode — by default the vectorized one,
    /// where scans read the source table's `Arc`-shared row storage
    /// without copying it and chains of Select/Project/Rename run fused
    /// columnar passes over 1024-row batches. Only the blocking operators
    /// (Pivot, AggregateBy, Sort) gather their full input. The original
    /// operator-at-a-time interpreter remains available as
    /// [`Plan::eval_materialized`] and serves as the oracle the executor is
    /// property-tested against.
    pub fn eval(&self, db: &Database) -> RelResult<Table> {
        crate::exec::Executor::from_env()?.execute(self, db)
    }

    /// Evaluate with an explicit [`ExecConfig`](crate::exec::ExecConfig)
    /// instead of the environment-derived default — equivalent to
    /// [`Executor::with_config`](crate::exec::Executor::with_config)
    /// followed by `execute`.
    ///
    /// The configuration only chooses the physical path — execution mode,
    /// serial or morsel-parallel — and the result (table bytes and error
    /// status alike) is identical for every configuration. Use this where
    /// determinism must not depend on the process environment: tests pin
    /// paths explicitly, and ETL runs thread one configuration through a
    /// whole workflow.
    pub fn eval_with(&self, db: &Database, cfg: &crate::exec::ExecConfig) -> RelResult<Table> {
        crate::exec::Executor::with_config(*cfg).execute(self, db)
    }

    /// Evaluate the plan by materializing a full [`Table`] at every
    /// operator — a thin wrapper over an
    /// [`Executor`](crate::exec::Executor) in
    /// [`ExecMode::Materialized`](crate::exec::ExecMode).
    ///
    /// This is the reference interpreter: simple, obviously correct, and
    /// the cross-validation oracle for the streaming executor —
    /// `tests/algebra_properties.rs` checks [`Plan::eval`] agrees with it
    /// on random plans, including failing ones. Prefer `eval` unless you
    /// specifically want operator-at-a-time materialization.
    pub fn eval_materialized(&self, db: &Database) -> RelResult<Table> {
        crate::exec::Executor::new()
            .mode(crate::exec::ExecMode::Materialized)
            .execute(self, db)
    }

    /// The materializing interpreter itself: the recursion behind
    /// [`Plan::eval_materialized`], called by the executor when the
    /// configured mode is `Materialized`.
    pub(crate) fn interpret(&self, db: &Database) -> RelResult<Table> {
        match self {
            // O(1) since table row storage is Arc-shared.
            Plan::Scan(name) => db.table(name).cloned(),
            Plan::Values { schema, rows } => Table::from_rows(schema.clone(), rows.clone()),
            Plan::Select { input, predicate } => {
                let t = input.interpret(db)?;
                let schema = t.schema().clone();
                let mut rows = Vec::new();
                for r in t.into_rows() {
                    if predicate.matches(&schema, &r)? {
                        rows.push(r);
                    }
                }
                Table::from_rows(keyless(schema), rows)
            }
            Plan::Project { input, columns } => {
                let t = input.interpret(db)?;
                let in_schema = t.schema().clone();
                let schema = project_output_schema(&in_schema, columns)?;
                let rows: Vec<Row> = t
                    .rows()
                    .iter()
                    .map(|r| columns.iter().map(|(_, e)| e.eval(&in_schema, r)).collect())
                    .collect::<RelResult<Vec<Row>>>()?;
                Table::from_rows(schema, rows)
            }
            Plan::Rename {
                input,
                table,
                columns,
            } => {
                let t = input.interpret(db)?;
                let schema = rename_output_schema(t.schema(), table.as_deref(), columns)?;
                Table::from_rows(schema, t.into_rows())
            }
            Plan::Join {
                left,
                right,
                on,
                kind,
            } => eval_join(db, left, right, on, *kind),
            Plan::Union { inputs } => {
                let mut iter = inputs.iter();
                let first = iter
                    .next()
                    .ok_or_else(|| RelError::Plan("union of zero inputs".into()))?
                    .interpret(db)?;
                let schema = keyless(first.schema().clone());
                let mut rows = first.into_rows();
                for p in iter {
                    let t = p.interpret(db)?;
                    check_union_compatible(&schema, t.schema())?;
                    rows.extend(t.into_rows());
                }
                Table::from_rows(schema, rows)
            }
            Plan::Distinct { input } => {
                let t = input.interpret(db)?;
                let schema = keyless(t.schema().clone());
                let mut seen = std::collections::HashSet::new();
                let rows: Vec<Row> = t
                    .into_rows()
                    .into_iter()
                    .filter(|r| seen.insert(r.clone()))
                    .collect();
                Table::from_rows(schema, rows)
            }
            Plan::Unpivot {
                input,
                keys,
                attr_col,
                val_col,
            } => eval_unpivot(db, input, keys, attr_col, val_col),
            Plan::Pivot {
                input,
                keys,
                attr_col,
                val_col,
                attrs,
            } => eval_pivot(db, input, keys, attr_col, val_col, attrs),
            Plan::AggregateBy {
                input,
                group_by,
                aggregates,
            } => eval_aggregate(db, input, group_by, aggregates),
            Plan::Sort { input, by } => {
                let t = input.interpret(db)?;
                let schema = keyless(t.schema().clone());
                let idxs = resolve_columns(&schema, by)?;
                let mut rows = t.into_rows();
                sort_rows(&mut rows, &idxs);
                Table::from_rows(schema, rows)
            }
            Plan::Limit { input, n } => {
                let t = input.interpret(db)?;
                let schema = keyless(t.schema().clone());
                let rows: Vec<Row> = t.into_rows().into_iter().take(*n).collect();
                Table::from_rows(schema, rows)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Binding and row-level kernels, shared between the materializing
// interpreter above and the streaming executor (`crate::exec`). Keeping both
// evaluators on the same schema computations and per-row algorithms is what
// makes them provably interchangeable.
// ---------------------------------------------------------------------------

/// Intermediate results drop primary keys: operators may legitimately
/// produce duplicate key values (e.g. projection away from the key).
pub(crate) fn keyless(schema: Schema) -> Schema {
    Schema::new(schema.name.clone(), schema.columns().to_vec()).expect("schema was valid")
}

/// Resolve column names to positions in `s`, with the table-qualified error
/// every operator reports for a missing column.
pub(crate) fn resolve_columns<'a, I>(s: &Schema, names: I) -> RelResult<Vec<usize>>
where
    I: IntoIterator<Item = &'a String>,
{
    names
        .into_iter()
        .map(|c| {
            s.index_of(c).ok_or_else(|| RelError::UnknownColumn {
                table: s.name.clone(),
                column: c.clone(),
            })
        })
        .collect()
}

pub(crate) fn resolve_column(s: &Schema, name: &str) -> RelResult<usize> {
    s.index_of(name).ok_or_else(|| RelError::UnknownColumn {
        table: s.name.clone(),
        column: name.to_owned(),
    })
}

pub(crate) fn check_union_compatible(left: &Schema, right: &Schema) -> RelResult<()> {
    if !left.union_compatible(right) {
        return Err(RelError::Plan(format!(
            "union-incompatible schemas `{left}` and `{right}`"
        )));
    }
    Ok(())
}

pub(crate) fn project_output_schema(
    in_schema: &Schema,
    columns: &[(String, Expr)],
) -> RelResult<Schema> {
    let mut out_cols = Vec::with_capacity(columns.len());
    for (alias, e) in columns {
        out_cols.push(Column::new(alias.clone(), e.infer_type(in_schema)?));
    }
    Schema::new(in_schema.name.clone(), out_cols)
}

pub(crate) fn rename_output_schema(
    s: &Schema,
    table: Option<&str>,
    columns: &[(String, String)],
) -> RelResult<Schema> {
    let mut cols = s.columns().to_vec();
    for (from, to) in columns {
        let idx = s.index_of(from).ok_or_else(|| RelError::UnknownColumn {
            table: s.name.clone(),
            column: from.clone(),
        })?;
        cols[idx].name = to.clone();
    }
    let name = table.map(str::to_owned).unwrap_or_else(|| s.name.clone());
    Schema::new(name, cols)
}

/// Output schema of a join: left columns, then right columns. Name
/// collisions get a `right.`-style disambiguating prefix; left-join right
/// columns become nullable even if declared NOT NULL.
pub(crate) fn join_output_schema(ls: &Schema, rs: &Schema, kind: JoinKind) -> RelResult<Schema> {
    let mut cols = ls.columns().to_vec();
    for c in rs.columns() {
        let mut c = c.clone();
        if ls.index_of(&c.name).is_some() {
            c.name = format!("{}.{}", rs.name, c.name);
        }
        if kind == JoinKind::Left {
            c.nullable = true;
        }
        cols.push(c);
    }
    Schema::new(format!("{}_{}", ls.name, rs.name), cols)
}

pub(crate) fn unpivot_output_schema(
    s: &Schema,
    key_idx: &[usize],
    attr_col: &str,
    val_col: &str,
) -> RelResult<Schema> {
    let mut cols: Vec<Column> = key_idx.iter().map(|&i| s.columns()[i].clone()).collect();
    cols.push(Column::new(attr_col, DataType::Text));
    cols.push(Column::new(val_col, DataType::Text));
    Schema::new(format!("{}_eav", s.name), cols)
}

/// Encode wide rows into EAV triples. Infallible: output columns are
/// carried keys plus freshly built text values.
pub(crate) fn unpivot_rows(
    s: &Schema,
    rows: &[Row],
    key_idx: &[usize],
    data_idx: &[usize],
) -> Vec<Row> {
    let mut out = Vec::new();
    for row in rows {
        for &di in data_idx {
            if row[di].is_null() {
                continue; // unanswered controls simply have no EAV row
            }
            let mut r: Row = Vec::with_capacity(key_idx.len() + 2);
            r.extend(key_idx.iter().map(|&i| row[i].clone()));
            r.push(Value::text(s.columns()[di].name.clone()));
            r.push(Value::text(row[di].to_string()));
            out.push(r);
        }
    }
    out
}

pub(crate) fn pivot_output_schema(
    s: &Schema,
    key_idx: &[usize],
    attrs: &[(String, DataType)],
) -> RelResult<Schema> {
    let mut cols: Vec<Column> = key_idx.iter().map(|&i| s.columns()[i].clone()).collect();
    for (name, ty) in attrs {
        cols.push(Column::new(name.clone(), *ty));
    }
    Schema::new(format!("{}_wide", s.name), cols)
}

/// Decode EAV triples back into wide rows, preserving first-seen entity
/// order for deterministic output.
pub(crate) fn pivot_rows(
    rows: &[Row],
    key_idx: &[usize],
    attr_idx: usize,
    val_idx: usize,
    attrs: &[(String, DataType)],
) -> RelResult<Vec<Row>> {
    use std::collections::hash_map::Entry;
    // Groups map entity keys to slots in `out`, so rows land directly in
    // first-seen order with no final reordering pass.
    let mut out: Vec<Row> = Vec::new();
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let attr_pos: HashMap<&str, usize> = attrs
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    for row in rows {
        let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        let slot = match groups.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let mut r: Row = Vec::with_capacity(key_idx.len() + attrs.len());
                r.extend(e.key().iter().cloned());
                r.extend(std::iter::repeat_n(Value::Null, attrs.len()));
                out.push(r);
                *e.insert(out.len() - 1)
            }
        };
        let attr = match &row[attr_idx] {
            Value::Text(a) => a.as_str(),
            other => {
                return Err(RelError::Eval(format!(
                    "pivot attribute column holds non-text value {other}"
                )))
            }
        };
        if let Some(&pos) = attr_pos.get(attr) {
            let v = match &row[val_idx] {
                Value::Null => continue,
                Value::Text(t) => cast_text(t, attrs[pos].1)?,
                other => cast_text(&other.to_string(), attrs[pos].1)?,
            };
            out[slot][key_idx.len() + pos] = v;
        }
        // Attributes outside `attrs` are silently dropped: the g-tree query
        // asked only for these nodes.
    }
    Ok(out)
}

/// Resolve each aggregate's source column (`None` for `COUNT(*)`).
pub(crate) fn resolve_aggregate_columns(
    s: &Schema,
    aggregates: &[Aggregate],
) -> RelResult<Vec<Option<usize>>> {
    aggregates
        .iter()
        .map(|a| match &a.func {
            AggFunc::CountAll => Ok(None),
            AggFunc::Count(c)
            | AggFunc::Sum(c)
            | AggFunc::Avg(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c) => s
                .index_of(c)
                .map(Some)
                .ok_or_else(|| RelError::UnknownColumn {
                    table: s.name.clone(),
                    column: c.clone(),
                }),
        })
        .collect()
}

pub(crate) fn aggregate_output_schema(
    s: &Schema,
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[Aggregate],
) -> RelResult<Schema> {
    let mut cols: Vec<Column> = g_idx.iter().map(|&i| s.columns()[i].clone()).collect();
    for (a, idx) in aggregates.iter().zip(agg_idx) {
        let ty = match &a.func {
            AggFunc::CountAll | AggFunc::Count(_) => DataType::Int,
            AggFunc::Avg(_) => DataType::Float,
            AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                s.columns()[idx.expect("column agg")].data_type
            }
        };
        cols.push(Column::new(a.alias.clone(), ty));
    }
    Schema::new(format!("{}_agg", s.name), cols)
}

/// Running accumulators for one aggregate of one group.
///
/// The state is **mergeable**: [`AggAcc::merge`] combines two accumulators
/// built over disjoint row ranges into the accumulator the full range would
/// have produced. That is what lets the parallel executor
/// (`exec::morsel`) fold per-morsel partial states in a final reduce.
/// Every combining operation here is associative (integer sums use
/// wrapping addition; min/max keep the first-seen extremum), **except**
/// the `f64` sum used for FLOAT columns — which is why the executor falls
/// back to the serial kernel for SUM/AVG over FLOAT (see `exec`).
#[derive(Default, Clone)]
pub(crate) struct AggAcc {
    count: i64,
    sum: f64,
    sum_is_float: bool,
    sum_int: i64,
    min: Option<Value>,
    max: Option<Value>,
    non_null: i64,
}

impl AggAcc {
    /// Fold one row into the accumulator. `idx` is the aggregate's source
    /// column (`None` for `COUNT(*)`).
    pub(crate) fn update(&mut self, idx: Option<usize>, row: &[Value]) {
        self.count += 1;
        if let Some(i) = idx {
            let v = &row[i];
            if v.is_null() {
                return;
            }
            self.non_null += 1;
            if let Some(f) = v.as_f64() {
                self.sum += f;
                if let Value::Int(n) = v {
                    self.sum_int = self.sum_int.wrapping_add(*n);
                } else {
                    self.sum_is_float = true;
                }
            }
            if self.min.as_ref().is_none_or(|m| v < m) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v > m) {
                self.max = Some(v.clone());
            }
        }
    }

    /// Fold one non-null INT input off a typed lane — [`Self::update`]
    /// specialized to `Value::Int(n)` so the vectorized aggregation kernel
    /// (`exec::blocking`) skips the per-row `Value` fetch.
    pub(crate) fn update_int(&mut self, n: i64) {
        self.count += 1;
        self.non_null += 1;
        self.sum += n as f64;
        self.sum_int = self.sum_int.wrapping_add(n);
        let v = Value::Int(n);
        if self.min.as_ref().is_none_or(|m| &v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| &v > m) {
            self.max = Some(v);
        }
    }

    /// Fold one non-null FLOAT input off a typed lane — [`Self::update`]
    /// specialized to `Value::Float(f)`. The `f64` running sum adds in
    /// call order, so serial lane aggregation stays bit-identical to the
    /// row kernel.
    pub(crate) fn update_float(&mut self, f: f64) {
        self.count += 1;
        self.non_null += 1;
        self.sum += f;
        self.sum_is_float = true;
        let v = Value::Float(f);
        if self.min.as_ref().is_none_or(|m| &v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| &v > m) {
            self.max = Some(v);
        }
    }

    /// Fold one NULL input: only the raw row count moves, exactly as
    /// [`Self::update`] behaves when the source value is NULL.
    pub(crate) fn update_null(&mut self) {
        self.count += 1;
    }

    /// Un-fold one previously-folded row (the differential evaluator's
    /// *retract* operation, see [`crate::delta`]). Only sound for the
    /// retractable accumulator states — COUNT(*), COUNT(col), and SUM/AVG
    /// over INT-typed columns, whose exact `sum_int` path inverts under
    /// wrapping subtraction. Min/max extrema and the non-associative `f64`
    /// running sum cannot be un-folded; callers must fall back to
    /// recomputing the group before reading those through `finish`.
    pub(crate) fn retract(&mut self, idx: Option<usize>, row: &[Value]) {
        self.count -= 1;
        if let Some(i) = idx {
            let v = &row[i];
            if v.is_null() {
                return;
            }
            self.non_null -= 1;
            if let Some(f) = v.as_f64() {
                self.sum -= f;
                if let Value::Int(n) = v {
                    self.sum_int = self.sum_int.wrapping_sub(*n);
                }
            }
        }
    }

    /// Combine with an accumulator over a *later* row range. Ties in
    /// min/max keep `self`'s value, matching the serial kernel's
    /// first-occurrence-wins behaviour.
    pub(crate) fn merge(&mut self, other: AggAcc) {
        self.count += other.count;
        self.non_null += other.non_null;
        self.sum += other.sum;
        self.sum_int = self.sum_int.wrapping_add(other.sum_int);
        self.sum_is_float |= other.sum_is_float;
        if let Some(m) = other.min {
            if self.min.as_ref().is_none_or(|s| &m < s) {
                self.min = Some(m);
            }
        }
        if let Some(m) = other.max {
            if self.max.as_ref().is_none_or(|s| &m > s) {
                self.max = Some(m);
            }
        }
    }

    /// Final value of one aggregate function over this accumulator.
    pub(crate) fn finish(self, func: &AggFunc) -> Value {
        match func {
            AggFunc::CountAll => Value::Int(self.count),
            AggFunc::Count(_) => Value::Int(self.non_null),
            AggFunc::Sum(_) => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.sum_is_float {
                    Value::Float(self.sum)
                } else {
                    Value::Int(self.sum_int)
                }
            }
            AggFunc::Avg(_) => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.sum_is_float {
                    Value::Float(self.sum / self.non_null as f64)
                } else {
                    // All inputs were integers: average the exact integer
                    // sum so the result is independent of accumulation
                    // order (the f64 running sum is not associative).
                    Value::Float(self.sum_int as f64 / self.non_null as f64)
                }
            }
            AggFunc::Min(_) => self.min.unwrap_or(Value::Null),
            AggFunc::Max(_) => self.max.unwrap_or(Value::Null),
        }
    }
}

/// Grouped aggregation state: accumulators per group key, with groups kept
/// in first-seen order. Built row-by-row by the serial kernel; built
/// per-morsel and merged in morsel-index order by the parallel executor —
/// because morsels are contiguous row ranges, merging partials in morsel
/// order reproduces the serial first-seen group order exactly.
pub(crate) struct GroupedAggState {
    order: Vec<Vec<Value>>,
    groups: HashMap<Vec<Value>, Vec<AggAcc>>,
    n_aggs: usize,
}

impl GroupedAggState {
    /// Fresh state. When `global` (no GROUP BY), the single output group is
    /// pre-seeded: SQL's COUNT(*) over an empty input is one `0` row.
    pub(crate) fn new(global: bool, n_aggs: usize) -> GroupedAggState {
        let mut st = GroupedAggState {
            order: Vec::new(),
            groups: HashMap::new(),
            n_aggs,
        };
        if global {
            st.order.push(Vec::new());
            st.groups
                .insert(Vec::new(), (0..n_aggs).map(|_| AggAcc::default()).collect());
        }
        st
    }

    /// Fold one row into its group's accumulators.
    pub(crate) fn update(&mut self, row: &[Value], g_idx: &[usize], agg_idx: &[Option<usize>]) {
        let key: Vec<Value> = g_idx.iter().map(|&i| row[i].clone()).collect();
        let n_aggs = self.n_aggs;
        let accs = self.groups.entry(key.clone()).or_insert_with(|| {
            self.order.push(key);
            (0..n_aggs).map(|_| AggAcc::default()).collect()
        });
        for (idx, acc) in agg_idx.iter().zip(accs.iter_mut()) {
            acc.update(*idx, row);
        }
    }

    /// Merge a partial state built over a *later* contiguous row range.
    /// `other`'s new groups append after `self`'s in `other`'s own
    /// first-seen order, preserving global first-seen order overall.
    pub(crate) fn merge(&mut self, mut other: GroupedAggState) {
        for key in std::mem::take(&mut other.order) {
            let incoming = other.groups.remove(&key).expect("group exists");
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (acc, inc) in e.get_mut().iter_mut().zip(incoming) {
                        acc.merge(inc);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.order.push(e.key().clone());
                    e.insert(incoming);
                }
            }
        }
    }

    /// Emit one output row per group, in first-seen order.
    pub(crate) fn finish(mut self, aggregates: &[Aggregate]) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.order.len());
        for key in self.order {
            let accs = self.groups.remove(&key).expect("group exists");
            let mut row = key;
            for (a, acc) in aggregates.iter().zip(accs) {
                row.push(acc.finish(&a.func));
            }
            out.push(row);
        }
        out
    }
}

/// Group rows and fold aggregates. Infallible once columns are resolved;
/// group order is first-seen, matching the interpreter.
pub(crate) fn aggregate_rows(
    rows: &[Row],
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[Aggregate],
) -> Vec<Row> {
    let mut st = GroupedAggState::new(g_idx.is_empty(), aggregates.len());
    for row in rows {
        st.update(row, g_idx, agg_idx);
    }
    st.finish(aggregates)
}

/// Sort rows by the given column positions (ascending, NULLs first via the
/// value total order).
pub(crate) fn sort_rows(rows: &mut [Row], idxs: &[usize]) {
    rows.sort_by(|a, b| {
        idxs.iter()
            .map(|&i| a[i].total_cmp(&b[i]))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn eval_join(
    db: &Database,
    left: &Plan,
    right: &Plan,
    on: &[(String, String)],
    kind: JoinKind,
) -> RelResult<Table> {
    let lt = left.interpret(db)?;
    let rt = right.interpret(db)?;
    let (ls, rs) = (lt.schema().clone(), rt.schema().clone());
    let l_idx = resolve_columns(&ls, on.iter().map(|(l, _)| l))?;
    let r_idx = resolve_columns(&rs, on.iter().map(|(_, r)| r))?;
    let schema = join_output_schema(&ls, &rs, kind)?;

    // Hash join, build side = right. NULL keys never match (SQL semantics).
    let mut index: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::new();
    for row in rt.rows() {
        let key: Vec<&Value> = r_idx.iter().map(|&i| &row[i]).collect();
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        index.entry(key).or_default().push(row);
    }
    let (l_arity, r_arity) = (ls.arity(), rs.arity());
    let mut out: Vec<Row> = Vec::new();
    for lrow in lt.rows() {
        let key: Vec<&Value> = l_idx.iter().map(|&i| &lrow[i]).collect();
        let matches = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            index.get(&key)
        };
        match matches {
            Some(rrows) => {
                for rrow in rrows {
                    let mut row = Vec::with_capacity(l_arity + r_arity);
                    row.extend(lrow.iter().cloned());
                    row.extend(rrow.iter().cloned());
                    out.push(row);
                }
            }
            None if kind == JoinKind::Left => {
                let mut row = Vec::with_capacity(l_arity + r_arity);
                row.extend(lrow.iter().cloned());
                row.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(row);
            }
            None => {}
        }
    }
    Table::from_rows(schema, out)
}

fn eval_unpivot(
    db: &Database,
    input: &Plan,
    keys: &[String],
    attr_col: &str,
    val_col: &str,
) -> RelResult<Table> {
    let t = input.interpret(db)?;
    let s = t.schema().clone();
    let key_idx = resolve_columns(&s, keys)?;
    let data_idx: Vec<usize> = (0..s.arity()).filter(|i| !key_idx.contains(i)).collect();
    let schema = unpivot_output_schema(&s, &key_idx, attr_col, val_col)?;
    let rows = unpivot_rows(&s, t.rows(), &key_idx, &data_idx);
    Table::from_rows(schema, rows)
}

/// Parse a textual EAV value back into a typed column value.
pub fn cast_text(text: &str, ty: DataType) -> RelResult<Value> {
    let v = match ty {
        DataType::Text => Some(Value::text(text)),
        DataType::Bool => match text {
            "TRUE" | "true" | "1" => Some(Value::Bool(true)),
            "FALSE" | "false" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        DataType::Int => text.parse::<i64>().ok().map(Value::Int),
        DataType::Float => text.parse::<f64>().ok().map(Value::Float),
        DataType::Date => parse_iso_date(text),
    };
    v.ok_or_else(|| RelError::Eval(format!("cannot cast '{text}' to {ty}")))
}

fn parse_iso_date(s: &str) -> Option<Value> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Value::date_from_ymd(y, m, d))
}

fn eval_pivot(
    db: &Database,
    input: &Plan,
    keys: &[String],
    attr_col: &str,
    val_col: &str,
    attrs: &[(String, DataType)],
) -> RelResult<Table> {
    let t = input.interpret(db)?;
    let s = t.schema().clone();
    let key_idx = resolve_columns(&s, keys)?;
    let attr_idx = resolve_column(&s, attr_col)?;
    let val_idx = resolve_column(&s, val_col)?;
    let schema = pivot_output_schema(&s, &key_idx, attrs)?;
    let rows = pivot_rows(t.rows(), &key_idx, attr_idx, val_idx, attrs)?;
    Table::from_rows(schema, rows)
}

fn eval_aggregate(
    db: &Database,
    input: &Plan,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> RelResult<Table> {
    let t = input.interpret(db)?;
    let s = t.schema().clone();
    let g_idx = resolve_columns(&s, group_by)?;
    let agg_idx = resolve_aggregate_columns(&s, aggregates)?;
    let schema = aggregate_output_schema(&s, &g_idx, &agg_idx, aggregates)?;
    let rows = aggregate_rows(t.rows(), &g_idx, &agg_idx, aggregates);
    Table::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn db() -> Database {
        let mut db = Database::new("clinic");
        let procs = Schema::new(
            "procedures",
            vec![
                Column::required("proc_id", DataType::Int),
                Column::new("patient", DataType::Text),
                Column::new("packs", DataType::Int),
                Column::new("hypoxia", DataType::Bool),
            ],
        )
        .unwrap()
        .with_primary_key(&["proc_id"])
        .unwrap();
        db.create_table(
            Table::from_rows(
                procs,
                vec![
                    vec![1.into(), "ada".into(), 0.into(), true.into()],
                    vec![2.into(), "bob".into(), 3.into(), false.into()],
                    vec![3.into(), "cyd".into(), Value::Null, true.into()],
                    vec![4.into(), "ada".into(), 1.into(), false.into()],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let findings = Schema::new(
            "findings",
            vec![
                Column::required("proc_id", DataType::Int),
                Column::new("finding", DataType::Text),
            ],
        )
        .unwrap();
        db.create_table(
            Table::from_rows(
                findings,
                vec![
                    vec![1.into(), "polyp".into()],
                    vec![1.into(), "fissure".into()],
                    vec![2.into(), "polyp".into()],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let t = Plan::scan("procedures")
            .select(Expr::col("hypoxia").eq(Expr::lit(true)))
            .project_cols(&["patient"])
            .eval(&db)
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::text("ada"));
    }

    #[test]
    fn computed_projection_types() {
        let db = db();
        let t = Plan::scan("procedures")
            .project(vec![(
                "double_packs",
                Expr::col("packs").mul(Expr::lit(2i64)),
            )])
            .eval(&db)
            .unwrap();
        assert_eq!(t.schema().columns()[0].data_type, DataType::Int);
        assert_eq!(t.rows()[1][0], Value::Int(6));
        assert!(t.rows()[2][0].is_null());
    }

    #[test]
    fn inner_and_left_join() {
        let db = db();
        let inner = Plan::scan("procedures")
            .join(
                Plan::scan("findings"),
                vec![("proc_id", "proc_id")],
                JoinKind::Inner,
            )
            .eval(&db)
            .unwrap();
        assert_eq!(inner.len(), 3);
        // Collision on proc_id gets prefixed.
        assert!(inner.schema().index_of("findings.proc_id").is_some());

        let left = Plan::scan("procedures")
            .join(
                Plan::scan("findings"),
                vec![("proc_id", "proc_id")],
                JoinKind::Left,
            )
            .eval(&db)
            .unwrap();
        assert_eq!(left.len(), 5); // procs 3 and 4 padded with NULLs
        let pad = left.rows().iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert!(pad[5].is_null());
    }

    #[test]
    fn union_and_distinct() {
        let db = db();
        let p = Plan::scan("procedures").project_cols(&["patient"]);
        let u = Plan::union(vec![p.clone(), p]).eval(&db).unwrap();
        assert_eq!(u.len(), 8);
        let d = Plan::union(vec![
            Plan::scan("procedures").project_cols(&["patient"]),
            Plan::scan("procedures").project_cols(&["patient"]),
        ])
        .distinct()
        .eval(&db)
        .unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn union_incompatible_rejected() {
        let db = db();
        let err = Plan::union(vec![
            Plan::scan("procedures").project_cols(&["patient"]),
            Plan::scan("procedures").project_cols(&["packs"]),
        ])
        .eval(&db)
        .unwrap_err();
        assert!(matches!(err, RelError::Plan(_)));
    }

    #[test]
    fn unpivot_then_pivot_roundtrips() {
        let db = db();
        let eav = Plan::Unpivot {
            input: Box::new(Plan::scan("procedures")),
            keys: vec!["proc_id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
        };
        let eav_t = eav.clone().eval(&db).unwrap();
        // 4 procs × 3 data cols, minus 1 NULL packs
        assert_eq!(eav_t.len(), 11);

        let wide = Plan::Pivot {
            input: Box::new(eav),
            keys: vec!["proc_id".into()],
            attr_col: "attr".into(),
            val_col: "val".into(),
            attrs: vec![
                ("patient".into(), DataType::Text),
                ("packs".into(), DataType::Int),
                ("hypoxia".into(), DataType::Bool),
            ],
        }
        .eval(&db)
        .unwrap();
        assert_eq!(wide.len(), 4);
        let orig = db.table("procedures").unwrap();
        for (a, b) in orig.rows().iter().zip(wide.rows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn aggregate_by_group() {
        let db = db();
        let t = Plan::scan("procedures")
            .aggregate(
                &["patient"],
                vec![
                    Aggregate {
                        func: AggFunc::CountAll,
                        alias: "n".into(),
                    },
                    Aggregate {
                        func: AggFunc::Sum("packs".into()),
                        alias: "total_packs".into(),
                    },
                    Aggregate {
                        func: AggFunc::Avg("packs".into()),
                        alias: "avg_packs".into(),
                    },
                ],
            )
            .sort_by(&["patient"])
            .eval(&db)
            .unwrap();
        assert_eq!(t.len(), 3);
        // ada: rows 1 & 4, packs 0 + 1
        assert_eq!(
            t.rows()[0],
            vec![Value::text("ada"), 2.into(), 1.into(), Value::Float(0.5)]
        );
        // cyd: packs NULL → SUM NULL, COUNT(*)=1
        assert_eq!(t.rows()[2][0], Value::text("cyd"));
        assert!(t.rows()[2][2].is_null());
    }

    #[test]
    fn count_distinct_via_distinct_plan() {
        let db = db();
        let t = Plan::scan("findings")
            .project_cols(&["finding"])
            .distinct()
            .aggregate(
                &[],
                vec![Aggregate {
                    func: AggFunc::CountAll,
                    alias: "n".into(),
                }],
            )
            .eval(&db)
            .unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let mut db = Database::new("d");
        let s = Schema::new("e", vec![Column::new("x", DataType::Int)]).unwrap();
        db.create_table(Table::new(s)).unwrap();
        let t = Plan::scan("e")
            .aggregate(
                &[],
                vec![
                    Aggregate {
                        func: AggFunc::CountAll,
                        alias: "n".into(),
                    },
                    Aggregate {
                        func: AggFunc::Sum("x".into()),
                        alias: "s".into(),
                    },
                    Aggregate {
                        func: AggFunc::Min("x".into()),
                        alias: "m".into(),
                    },
                ],
            )
            .eval(&db)
            .unwrap();
        assert_eq!(
            t.len(),
            1,
            "SQL: COUNT(*) over empty input is a single 0 row"
        );
        assert_eq!(t.rows()[0][0], Value::Int(0));
        assert!(t.rows()[0][1].is_null());
        assert!(t.rows()[0][2].is_null());
        // Grouped aggregation over empty input stays empty.
        let g = Plan::scan("e")
            .aggregate(
                &["x"],
                vec![Aggregate {
                    func: AggFunc::CountAll,
                    alias: "n".into(),
                }],
            )
            .eval(&db)
            .unwrap();
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let t = Plan::scan("procedures")
            .sort_by(&["packs"])
            .limit(2)
            .eval(&db)
            .unwrap();
        assert_eq!(t.len(), 2);
        assert!(
            t.rows()[0][2].is_null(),
            "NULL sorts first under total order"
        );
    }

    #[test]
    fn scanned_tables_transitive() {
        let p = Plan::scan("a")
            .join(Plan::scan("b"), vec![("x", "x")], JoinKind::Inner)
            .select(Expr::col("x").is_not_null());
        assert_eq!(p.scanned_tables(), vec!["a", "b"]);
    }

    #[test]
    fn cast_text_all_types() {
        assert_eq!(cast_text("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            cast_text("2.5", DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            cast_text("TRUE", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            cast_text("2006-03-26", DataType::Date).unwrap(),
            Value::date_from_ymd(2006, 3, 26)
        );
        assert!(cast_text("notanint", DataType::Int).is_err());
        assert!(cast_text("2006-13-01", DataType::Date).is_err());
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = Database::new("t");
        let s = Schema::new("l", vec![Column::new("k", DataType::Int)]).unwrap();
        db.create_table(Table::from_rows(s, vec![vec![Value::Null], vec![1.into()]]).unwrap())
            .unwrap();
        let s = Schema::new("r", vec![Column::new("k", DataType::Int)]).unwrap();
        db.create_table(Table::from_rows(s, vec![vec![Value::Null], vec![1.into()]]).unwrap())
            .unwrap();
        let t = Plan::scan("l")
            .join(Plan::scan("r"), vec![("k", "k")], JoinKind::Inner)
            .eval(&db)
            .unwrap();
        assert_eq!(t.len(), 1);
    }
}
