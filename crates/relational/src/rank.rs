//! Order-statistic rank structures for sub-linear delta application.
//!
//! The differential layer ([`crate::delta`]) turns base-table edits into
//! positional edit scripts ([`crate::delta::Patch`]) and pushes them through
//! each operator's cached state. Two maintenance problems there are
//! naturally *rank* problems:
//!
//! * **Select/Project lineage** — "child row `i` survived the predicate;
//!   which output position is it at?" is `rank(i)` over the set of
//!   surviving child positions.
//! * **Aggregate/Pivot output order** — group output order is first-seen
//!   input order, so "which output row does group `g` occupy?" is the rank
//!   of `g`'s first occurrence among all first occurrences.
//!
//! Both are answered by [`RankList`], a weight-augmented order-statistic
//! list (an implicit treap): a sequence that supports positional insert and
//! delete, position lookup for a stable node handle, and prefix-weight
//! queries, all in `O(log n)`. Setting each element's weight to `1` when it
//! "counts" (a row passing a filter, a row opening a group) and `0`
//! otherwise makes `weight_before(pos)` exactly the rank query both
//! problems need. [`FirstSeenIndex`] layers per-key occurrence tracking on
//! top for the aggregate/pivot case, including group death, revival, and
//! first-occurrence promotion.
//!
//! DESIGN.md §15 documents the maintenance contract built on these
//! structures; `crates/relational/src/delta.rs` is the consumer.
//!
//! # Example
//!
//! ```
//! use guava_relational::rank::RankList;
//!
//! // Child rows 0..5; rows 1 and 3 pass a filter (weight 1).
//! let (mut lineage, _ids) =
//!     RankList::from_entries((0..5).map(|i| (i, u64::from(i == 1 || i == 3))));
//! assert_eq!(lineage.total_weight(), 2); // two output rows
//! assert_eq!(lineage.weight_before(3), 1); // child row 3 is output row 1
//!
//! // A new passing child row arrives at position 2: output position is
//! // the number of passing rows before it.
//! assert_eq!(lineage.weight_before(2), 1);
//! lineage.insert_at(2, 9, 1);
//! assert_eq!(lineage.total_weight(), 3);
//! // Old child row 3 (now at position 4) shifted to output row 2.
//! assert_eq!(lineage.weight_before(4), 2);
//! ```

use std::collections::HashMap;

use crate::table::Row;
use crate::value::Value;

/// Sentinel for "no node" in the arena.
const NIL: u32 = u32::MAX;

/// Stable handle to an element of a [`RankList`].
///
/// Handles stay valid across inserts and deletes of *other* elements and
/// are only invalidated when their own element is removed (the slot may
/// then be recycled by a later insert).
pub type NodeId = u32;

#[derive(Clone, Debug)]
struct Node<T> {
    value: T,
    prio: u64,
    left: u32,
    right: u32,
    parent: u32,
    /// Subtree size (number of nodes, including self).
    size: u32,
    /// This node's own weight.
    weight: u64,
    /// Subtree weight sum (including self).
    wsum: u64,
}

/// A weight-augmented order-statistic list (implicit treap).
///
/// Maintains a sequence of `T` values addressable by position, where every
/// element carries a `u64` weight. All operations are `O(log n)` expected
/// (deterministic pseudo-random priorities), except bulk construction
/// ([`RankList::from_entries`], `O(n)`) and iteration.
///
/// Invariants (checked by the unit-test oracle):
///
/// * In-order traversal yields elements in sequence order; positions are
///   `0..len()`.
/// * `weight_before(p)` is the sum of weights of elements at positions
///   `< p`; `weight_before(len()) == total_weight()`.
/// * [`NodeId`] handles returned by [`RankList::insert_at`] /
///   [`RankList::from_entries`] remain valid until that element is removed,
///   and [`RankList::pos_of`] always reports the handle's *current*
///   position.
#[derive(Clone, Debug)]
pub struct RankList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
}

impl<T> Default for RankList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RankList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        RankList {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Bulk-builds a list from `(value, weight)` entries in sequence order.
    ///
    /// `O(n)` via right-spine cartesian-tree construction. Returns the list
    /// and the [`NodeId`] of every entry in sequence order, so callers can
    /// record stable handles without `O(n log n)` position lookups.
    pub fn from_entries(entries: impl IntoIterator<Item = (T, u64)>) -> (Self, Vec<NodeId>) {
        let mut list = Self::new();
        let mut ids = Vec::new();
        let mut spine: Vec<u32> = Vec::new();
        for (value, weight) in entries {
            let id = list.alloc(value, weight);
            ids.push(id);
            let mut adopted = NIL;
            while let Some(&top) = spine.last() {
                if list.nodes[top as usize].prio > list.nodes[id as usize].prio {
                    adopted = spine.pop().unwrap();
                } else {
                    break;
                }
            }
            list.nodes[id as usize].left = adopted;
            if adopted != NIL {
                list.nodes[adopted as usize].parent = id;
            }
            if let Some(&top) = spine.last() {
                list.nodes[top as usize].right = id;
                list.nodes[id as usize].parent = top;
            } else {
                list.root = id;
            }
            spine.push(id);
        }
        // Fix subtree aggregates bottom-up: reverse pre-order visits every
        // child before its parent.
        if list.root != NIL {
            let mut order = Vec::with_capacity(ids.len());
            let mut stack = vec![list.root];
            while let Some(x) = stack.pop() {
                order.push(x);
                let n = &list.nodes[x as usize];
                if n.left != NIL {
                    stack.push(n.left);
                }
                if n.right != NIL {
                    stack.push(n.right);
                }
            }
            for &x in order.iter().rev() {
                list.pull(x);
            }
        }
        (list, ids)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].size as usize
        }
    }

    /// `true` when the list holds no elements.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Sum of all element weights.
    pub fn total_weight(&self) -> u64 {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].wsum
        }
    }

    /// Sum of the weights of elements at positions `< pos`.
    ///
    /// `pos` may equal `len()`, in which case this is [`total_weight`].
    ///
    /// [`total_weight`]: RankList::total_weight
    pub fn weight_before(&self, pos: usize) -> u64 {
        debug_assert!(pos <= self.len());
        let mut acc = 0u64;
        let mut k = pos;
        let mut cur = self.root;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            let ls = self.size_of(n.left) as usize;
            if k <= ls {
                cur = n.left;
            } else {
                acc += self.wsum_of(n.left) + n.weight;
                k -= ls + 1;
                cur = n.right;
            }
        }
        acc
    }

    /// The element at `pos`.
    ///
    /// Panics if `pos >= len()`.
    pub fn get(&self, pos: usize) -> &T {
        &self.nodes[self.node_at(pos) as usize].value
    }

    /// The handle of the element at `pos`.
    ///
    /// Panics if `pos >= len()`.
    pub fn id_at(&self, pos: usize) -> NodeId {
        self.node_at(pos)
    }

    /// The element addressed by `id`.
    pub fn value_of(&self, id: NodeId) -> &T {
        &self.nodes[id as usize].value
    }

    /// The weight of the element addressed by `id`.
    pub fn weight_of(&self, id: NodeId) -> u64 {
        self.nodes[id as usize].weight
    }

    /// The current position of the element addressed by `id`.
    ///
    /// `O(log n)` walk to the root via parent pointers. The handle must be
    /// live (not removed).
    pub fn pos_of(&self, id: NodeId) -> usize {
        let mut pos = self.size_of(self.nodes[id as usize].left) as usize;
        let mut cur = id;
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NIL {
                break;
            }
            if self.nodes[p as usize].right == cur {
                pos += self.size_of(self.nodes[p as usize].left) as usize + 1;
            }
            cur = p;
        }
        pos
    }

    /// Inserts `value` with `weight` so it ends up at position `pos`
    /// (existing elements at `>= pos` shift right). Returns a stable
    /// handle. Panics if `pos > len()`.
    pub fn insert_at(&mut self, pos: usize, value: T, weight: u64) -> NodeId {
        debug_assert!(pos <= self.len());
        let id = self.alloc(value, weight);
        if self.root == NIL {
            self.root = id;
            return id;
        }
        let mut k = pos;
        let mut cur = self.root;
        loop {
            let n = &self.nodes[cur as usize];
            let ls = self.size_of(n.left) as usize;
            if k <= ls {
                if n.left == NIL {
                    self.nodes[cur as usize].left = id;
                    break;
                }
                cur = n.left;
            } else {
                k -= ls + 1;
                if n.right == NIL {
                    self.nodes[cur as usize].right = id;
                    break;
                }
                cur = n.right;
            }
        }
        self.nodes[id as usize].parent = cur;
        // Propagate the new node's contribution to every ancestor.
        let w = self.nodes[id as usize].weight;
        let mut up = cur;
        while up != NIL {
            self.nodes[up as usize].size += 1;
            self.nodes[up as usize].wsum += w;
            up = self.nodes[up as usize].parent;
        }
        // Restore the heap property (min priority on top).
        while {
            let p = self.nodes[id as usize].parent;
            p != NIL && self.nodes[id as usize].prio < self.nodes[p as usize].prio
        } {
            self.rotate_up(id);
        }
        id
    }

    /// Removes and returns the element (and its weight) at `pos`
    /// (elements at `> pos` shift left). Panics if `pos >= len()`.
    pub fn remove_at(&mut self, pos: usize) -> (T, u64)
    where
        T: Default,
    {
        let id = self.node_at(pos);
        // Rotate the victim down to a leaf, keeping the heap property
        // among the other nodes.
        loop {
            let n = &self.nodes[id as usize];
            let (l, r) = (n.left, n.right);
            if l == NIL && r == NIL {
                break;
            }
            let child = if l != NIL
                && (r == NIL || self.nodes[l as usize].prio < self.nodes[r as usize].prio)
            {
                l
            } else {
                r
            };
            self.rotate_up(child);
        }
        // Detach the leaf and strip its contribution from all ancestors.
        let parent = self.nodes[id as usize].parent;
        let w = self.nodes[id as usize].weight;
        if parent == NIL {
            self.root = NIL;
        } else {
            if self.nodes[parent as usize].left == id {
                self.nodes[parent as usize].left = NIL;
            } else {
                self.nodes[parent as usize].right = NIL;
            }
            let mut up = parent;
            while up != NIL {
                self.nodes[up as usize].size -= 1;
                self.nodes[up as usize].wsum -= w;
                up = self.nodes[up as usize].parent;
            }
        }
        self.free.push(id);
        let value = {
            let slot = &mut self.nodes[id as usize];
            slot.parent = NIL;
            slot.left = NIL;
            slot.right = NIL;
            std::mem::take(&mut slot.value)
        };
        (value, w)
    }

    /// Sets the weight of the element addressed by `id`, updating ancestor
    /// sums in `O(log n)`.
    pub fn set_weight(&mut self, id: NodeId, weight: u64) {
        let old = self.nodes[id as usize].weight;
        if old == weight {
            return;
        }
        self.nodes[id as usize].weight = weight;
        let mut cur = id;
        while cur != NIL {
            let n = &mut self.nodes[cur as usize];
            n.wsum = n.wsum + weight - old;
            cur = n.parent;
        }
    }

    /// In-order iteration over all elements.
    pub fn iter(&self) -> RankIter<'_, T> {
        RankIter {
            list: self,
            stack: Vec::new(),
            cur: self.root,
            weighted_only: false,
        }
    }

    /// In-order iteration over elements with weight `> 0`, skipping whole
    /// zero-weight subtrees — `O(k log n)` for `k` weighted elements rather
    /// than `O(n)`.
    pub fn iter_weighted(&self) -> RankIter<'_, T> {
        RankIter {
            list: self,
            stack: Vec::new(),
            cur: if self.wsum_of(self.root) > 0 {
                self.root
            } else {
                NIL
            },
            weighted_only: true,
        }
    }

    fn node_at(&self, pos: usize) -> u32 {
        debug_assert!(pos < self.len());
        let mut k = pos;
        let mut cur = self.root;
        loop {
            let n = &self.nodes[cur as usize];
            let ls = self.size_of(n.left) as usize;
            if k < ls {
                cur = n.left;
            } else if k == ls {
                return cur;
            } else {
                k -= ls + 1;
                cur = n.right;
            }
        }
    }

    fn size_of(&self, id: u32) -> u32 {
        if id == NIL {
            0
        } else {
            self.nodes[id as usize].size
        }
    }

    fn wsum_of(&self, id: u32) -> u64 {
        if id == NIL {
            0
        } else {
            self.nodes[id as usize].wsum
        }
    }

    fn pull(&mut self, x: u32) {
        let (l, r) = {
            let n = &self.nodes[x as usize];
            (n.left, n.right)
        };
        let size = 1 + self.size_of(l) + self.size_of(r);
        let wsum = self.nodes[x as usize].weight + self.wsum_of(l) + self.wsum_of(r);
        let n = &mut self.nodes[x as usize];
        n.size = size;
        n.wsum = wsum;
    }

    /// Rotates `x` above its parent, preserving in-order sequence and
    /// repairing size/weight aggregates locally.
    fn rotate_up(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        debug_assert!(p != NIL);
        let g = self.nodes[p as usize].parent;
        if self.nodes[p as usize].left == x {
            let b = self.nodes[x as usize].right;
            self.nodes[p as usize].left = b;
            if b != NIL {
                self.nodes[b as usize].parent = p;
            }
            self.nodes[x as usize].right = p;
        } else {
            let b = self.nodes[x as usize].left;
            self.nodes[p as usize].right = b;
            if b != NIL {
                self.nodes[b as usize].parent = p;
            }
            self.nodes[x as usize].left = p;
        }
        self.nodes[p as usize].parent = x;
        self.nodes[x as usize].parent = g;
        if g == NIL {
            self.root = x;
        } else if self.nodes[g as usize].left == p {
            self.nodes[g as usize].left = x;
        } else {
            self.nodes[g as usize].right = x;
        }
        self.pull(p);
        self.pull(x);
    }

    fn alloc(&mut self, value: T, weight: u64) -> u32 {
        // splitmix64: deterministic priorities so rebuilds and refreshes
        // are reproducible across runs and machines.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let prio = z ^ (z >> 31);
        let node = Node {
            value,
            prio,
            left: NIL,
            right: NIL,
            parent: NIL,
            size: 1,
            weight,
            wsum: weight,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as u32;
            self.nodes.push(node);
            id
        }
    }
}

/// In-order iterator over a [`RankList`]; see [`RankList::iter`] and
/// [`RankList::iter_weighted`].
pub struct RankIter<'a, T> {
    list: &'a RankList<T>,
    stack: Vec<u32>,
    cur: u32,
    weighted_only: bool,
}

impl<'a, T> Iterator for RankIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            while self.cur != NIL {
                let n = &self.list.nodes[self.cur as usize];
                if self.weighted_only && n.wsum == 0 {
                    self.cur = NIL;
                    break;
                }
                self.stack.push(self.cur);
                self.cur = n.left;
            }
            let x = self.stack.pop()?;
            let n = &self.list.nodes[x as usize];
            self.cur = n.right;
            if !self.weighted_only || n.weight > 0 {
                return Some(&n.value);
            }
        }
    }
}

/// Outcome of [`FirstSeenIndex::remove`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The removed row was not its key's first occurrence; group order is
    /// untouched.
    Later,
    /// The removed row was the last occurrence of its key: the group died.
    Died,
    /// The removed row was the key's first occurrence but later occurrences
    /// survive: the next one was promoted to first, so the group's
    /// first-seen anchor moved.
    Promoted,
}

/// Outcome of [`FirstSeenIndex::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The row opened a key not currently present (a new group, or a
    /// revival of one that died earlier in the same batch).
    NewKey,
    /// The row joined an existing key after its current first occurrence.
    Later,
    /// The row joined an existing key *before* its current first
    /// occurrence and was promoted to first, moving the group's
    /// first-seen anchor.
    Promoted,
}

#[derive(Clone, Debug)]
struct KeyOcc {
    /// Live occurrence nodes (unordered; `slot` gives each node's index).
    nodes: Vec<NodeId>,
    /// The occurrence currently flagged as first (weight 1 in `rows`).
    first: NodeId,
}

/// Persistent first-occurrence tracking over an operator's input rows.
///
/// Stores the input sequence in a [`RankList`] where a row's weight is `1`
/// iff it is the *first* live occurrence of its group key, and maintains a
/// per-key registry of occurrence handles. This makes the aggregate/pivot
/// order queries sub-linear:
///
/// * a group's output rank is `weight_before(pos(first))` — `O(log n)`;
/// * group count is `total_weight()` — `O(1)`;
/// * groups in output order are [`FirstSeenIndex::first_rows_in_order`] —
///   `O(groups · log n)`;
/// * per-row insert/remove report exactly how group order was affected
///   ([`InsertOutcome`] / [`RemoveOutcome`]), so the caller can tell a
///   cheap in-place patch apart from an order-changing edit.
///
/// The index is equivalent, at every point, to recomputing first-seen
/// order from scratch over its current row sequence (the property suite in
/// `tests/refresh_incremental.rs` asserts this against `eval_materialized`
/// rebuilds).
#[derive(Clone, Debug)]
pub struct FirstSeenIndex {
    rows: RankList<Row>,
    key_idx: Vec<usize>,
    keys: HashMap<Vec<Value>, KeyOcc>,
    /// Back-reference: node id → its index in `keys[key].nodes`, for O(1)
    /// swap-removal.
    slot: HashMap<NodeId, u32>,
}

impl FirstSeenIndex {
    /// Builds the index over `rows`, grouping by the column positions in
    /// `key_idx`. `O(n)` plus hashing.
    pub fn from_rows(rows: Vec<Row>, key_idx: Vec<usize>) -> Self {
        let mut keys: HashMap<Vec<Value>, KeyOcc> = HashMap::new();
        let mut slot: HashMap<NodeId, u32> = HashMap::new();
        // Two passes: weights first (so the bulk build sees them), then the
        // registry once node ids exist.
        let ki = key_idx.clone();
        let weights: Vec<u64> = {
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
            rows.iter()
                .map(|r| {
                    let key: Vec<Value> = ki.iter().map(|&i| r[i].clone()).collect();
                    if seen.insert(key, ()).is_none() {
                        1
                    } else {
                        0
                    }
                })
                .collect()
        };
        let (list, ids) = RankList::from_entries(rows.into_iter().zip(weights));
        for &id in &ids {
            let row = list.value_of(id);
            let key: Vec<Value> = ki.iter().map(|&i| row[i].clone()).collect();
            let occ = keys.entry(key).or_insert(KeyOcc {
                nodes: Vec::new(),
                first: id,
            });
            slot.insert(id, occ.nodes.len() as u32);
            occ.nodes.push(id);
        }
        FirstSeenIndex {
            rows: list,
            key_idx,
            keys,
            slot,
        }
    }

    /// Number of input rows currently indexed.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of live groups. `O(1)`.
    pub fn group_count(&self) -> usize {
        self.rows.total_weight() as usize
    }

    /// The input row at `pos`. `O(log n)`.
    pub fn row(&self, pos: usize) -> &Row {
        self.rows.get(pos)
    }

    /// Extracts the group key of `row` under this index's key columns.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.key_idx.iter().map(|&i| row[i].clone()).collect()
    }

    /// `true` when `key` currently has at least one occurrence.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.keys.contains_key(key)
    }

    /// The output rank `key`'s group currently occupies (its first
    /// occurrence's rank among all first occurrences), or `None` if the
    /// key has no live occurrence. `O(log n)`.
    pub fn rank_of(&self, key: &[Value]) -> Option<usize> {
        let occ = self.keys.get(key)?;
        Some(self.rows.weight_before(self.rows.pos_of(occ.first)) as usize)
    }

    /// Removes the row at `pos`, reporting how its group's order was
    /// affected. `O(log n)`, plus `O(k log n)` to elect a new first
    /// occurrence when the current first of a `k`-occurrence group is
    /// removed.
    pub fn remove(&mut self, pos: usize) -> (Row, RemoveOutcome) {
        let id = self.rows.id_at(pos);
        let was_first = self.rows.weight_of(id) == 1;
        let (row, _) = self.rows.remove_at(pos);
        let key = self.key_of(&row);
        let occ = self.keys.get_mut(&key).expect("row key must be indexed");
        let s = self.slot.remove(&id).expect("node must have a slot") as usize;
        let last = occ.nodes.pop().expect("occurrence list cannot be empty");
        if last != id {
            occ.nodes[s] = last;
            self.slot.insert(last, s as u32);
        }
        if occ.nodes.is_empty() {
            debug_assert!(was_first);
            self.keys.remove(&key);
            return (row, RemoveOutcome::Died);
        }
        if was_first {
            let new_first = *occ
                .nodes
                .iter()
                .min_by_key(|&&n| self.rows.pos_of(n))
                .expect("non-empty");
            occ.first = new_first;
            self.rows.set_weight(new_first, 1);
            return (row, RemoveOutcome::Promoted);
        }
        (row, RemoveOutcome::Later)
    }

    /// Inserts `row` at `pos`, reporting how its group's order was
    /// affected. `O(log n)`.
    pub fn insert(&mut self, pos: usize, row: Row) -> InsertOutcome {
        let key = self.key_of(&row);
        let prev_first_pos = self.keys.get(&key).map(|occ| self.rows.pos_of(occ.first));
        match prev_first_pos {
            None => {
                let id = self.rows.insert_at(pos, row, 1);
                let occ = self.keys.entry(key).or_insert(KeyOcc {
                    nodes: Vec::new(),
                    first: id,
                });
                occ.first = id;
                self.slot.insert(id, occ.nodes.len() as u32);
                occ.nodes.push(id);
                InsertOutcome::NewKey
            }
            Some(first_pos) => {
                let promoted = pos <= first_pos;
                let id = self.rows.insert_at(pos, row, u64::from(promoted));
                let occ = self.keys.get_mut(&key).expect("checked above");
                self.slot.insert(id, occ.nodes.len() as u32);
                occ.nodes.push(id);
                if promoted {
                    let old_first = occ.first;
                    self.rows.set_weight(old_first, 0);
                    occ.first = id;
                    InsertOutcome::Promoted
                } else {
                    InsertOutcome::Later
                }
            }
        }
    }

    /// Current positions of `key`'s occurrences in input order.
    /// `O(k log n + k log k)`.
    pub fn occurrence_positions(&self, key: &[Value]) -> Vec<usize> {
        let Some(occ) = self.keys.get(key) else {
            return Vec::new();
        };
        let mut positions: Vec<usize> = occ.nodes.iter().map(|&n| self.rows.pos_of(n)).collect();
        positions.sort_unstable();
        positions
    }

    /// The first-occurrence row of every live group, in group output
    /// order. `O(groups · log n)` — zero-weight subtrees are skipped.
    pub fn first_rows_in_order(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter_weighted()
    }

    /// All input rows in order. `O(n)`; used only by full-recompute
    /// fallbacks.
    pub fn rows_in_order(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so oracle tests reproduce without an external
    /// proptest dependency.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn ranklist_matches_vec_oracle() {
        let mut rng = Lcg(7);
        for round in 0..20 {
            let mut list: RankList<u64> = RankList::new();
            let mut oracle: Vec<(u64, u64)> = Vec::new();
            let mut ids: Vec<NodeId> = Vec::new();
            for step in 0..400 {
                let op = rng.next() % 4;
                if op < 2 || oracle.is_empty() {
                    let pos = (rng.next() as usize) % (oracle.len() + 1);
                    let v = rng.next();
                    let w = rng.next() % 3;
                    let id = list.insert_at(pos, v, w);
                    oracle.insert(pos, (v, w));
                    ids.insert(pos, id);
                } else if op == 2 {
                    let pos = (rng.next() as usize) % oracle.len();
                    let (v, w) = list.remove_at(pos);
                    let (ov, ow) = oracle.remove(pos);
                    ids.remove(pos);
                    assert_eq!((v, w), (ov, ow), "round {round} step {step}");
                } else {
                    let pos = (rng.next() as usize) % oracle.len();
                    let w = rng.next() % 3;
                    list.set_weight(ids[pos], w);
                    oracle[pos].1 = w;
                }
                assert_eq!(list.len(), oracle.len());
                let total: u64 = oracle.iter().map(|&(_, w)| w).sum();
                assert_eq!(list.total_weight(), total);
                let probe = (rng.next() as usize) % (oracle.len() + 1);
                let prefix: u64 = oracle[..probe].iter().map(|&(_, w)| w).sum();
                assert_eq!(
                    list.weight_before(probe),
                    prefix,
                    "round {round} step {step}"
                );
                if !oracle.is_empty() {
                    let p = (rng.next() as usize) % oracle.len();
                    assert_eq!(*list.get(p), oracle[p].0);
                    assert_eq!(list.pos_of(ids[p]), p);
                }
            }
            let collected: Vec<u64> = list.iter().copied().collect();
            let expected: Vec<u64> = oracle.iter().map(|&(v, _)| v).collect();
            assert_eq!(collected, expected);
            let weighted: Vec<u64> = list.iter_weighted().copied().collect();
            let expected_w: Vec<u64> = oracle
                .iter()
                .filter(|&&(_, w)| w > 0)
                .map(|&(v, _)| v)
                .collect();
            assert_eq!(weighted, expected_w);
        }
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let mut rng = Lcg(99);
        let entries: Vec<(u64, u64)> = (0..1000).map(|_| (rng.next(), rng.next() % 2)).collect();
        let (bulk, ids) = RankList::from_entries(entries.iter().copied());
        assert_eq!(bulk.len(), entries.len());
        assert_eq!(
            bulk.total_weight(),
            entries.iter().map(|&(_, w)| w).sum::<u64>()
        );
        for (pos, &id) in ids.iter().enumerate() {
            assert_eq!(bulk.pos_of(id), pos);
            assert_eq!(*bulk.value_of(id), entries[pos].0);
        }
        for probe in [0, 1, 17, 500, 999, 1000] {
            let prefix: u64 = entries[..probe].iter().map(|&(_, w)| w).sum();
            assert_eq!(bulk.weight_before(probe), prefix);
        }
        let collected: Vec<u64> = bulk.iter().copied().collect();
        let expected: Vec<u64> = entries.iter().map(|&(v, _)| v).collect();
        assert_eq!(collected, expected);
    }

    fn fs_oracle(rows: &[Row], key_idx: &[usize]) -> Vec<Vec<Value>> {
        let mut seen = Vec::new();
        for r in rows {
            let key: Vec<Value> = key_idx.iter().map(|&i| r[i].clone()).collect();
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }

    #[test]
    fn first_seen_index_matches_oracle() {
        let mut rng = Lcg(42);
        let key_idx = vec![0usize];
        for round in 0..20 {
            let mut oracle: Vec<Row> = Vec::new();
            let mut idx = FirstSeenIndex::from_rows(Vec::new(), key_idx.clone());
            for step in 0..300 {
                if !rng.next().is_multiple_of(3) || oracle.is_empty() {
                    let pos = (rng.next() as usize) % (oracle.len() + 1);
                    // Low-cardinality keys so deaths/revivals/promotions
                    // happen often.
                    let row = vec![
                        Value::Int((rng.next() % 4) as i64),
                        Value::Int(rng.next() as i64),
                    ];
                    idx.insert(pos, row.clone());
                    oracle.insert(pos, row);
                } else {
                    let pos = (rng.next() as usize) % oracle.len();
                    let (row, _) = idx.remove(pos);
                    let expect = oracle.remove(pos);
                    assert_eq!(row, expect);
                }
                let expect_order = fs_oracle(&oracle, &key_idx);
                assert_eq!(
                    idx.group_count(),
                    expect_order.len(),
                    "round {round} step {step}"
                );
                let got_order: Vec<Vec<Value>> =
                    idx.first_rows_in_order().map(|r| idx.key_of(r)).collect();
                assert_eq!(got_order, expect_order, "round {round} step {step}");
                for (rank, key) in expect_order.iter().enumerate() {
                    assert_eq!(idx.rank_of(key), Some(rank));
                    let occs = idx.occurrence_positions(key);
                    assert!(!occs.is_empty());
                    let oracle_occs: Vec<usize> = oracle
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| &idx.key_of(r) == key)
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(occs, oracle_occs);
                }
            }
        }
    }

    #[test]
    fn first_seen_death_then_revival_moves_group_to_end() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(1), Value::Int(30)],
        ];
        let mut idx = FirstSeenIndex::from_rows(rows, vec![0]);
        assert_eq!(idx.rank_of(&[Value::Int(1)]), Some(0));
        // Kill group 1 entirely…
        let (_, o1) = idx.remove(2);
        assert_eq!(o1, RemoveOutcome::Later);
        let (_, o2) = idx.remove(0);
        assert_eq!(o2, RemoveOutcome::Died);
        assert_eq!(idx.rank_of(&[Value::Int(1)]), None);
        // …then revive it with an appended row: it must now rank AFTER
        // group 2, matching a from-scratch first-seen pass.
        assert_eq!(
            idx.insert(1, vec![Value::Int(1), Value::Int(40)]),
            InsertOutcome::NewKey
        );
        assert_eq!(idx.rank_of(&[Value::Int(2)]), Some(0));
        assert_eq!(idx.rank_of(&[Value::Int(1)]), Some(1));
    }
}
