//! Minimal CSV import/export — the hand-off format between the warehouse
//! and the analysts' statistical packages (Section 2: "extract relevant
//! reports for import into a statistical package").
//!
//! Supports RFC-4180-style quoting. NULL is the empty unquoted field; an
//! empty *quoted* field is the empty string.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// Serialize a table to CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| escape(&c.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Text(s) => escape(s),
                v => v.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.is_empty() || s.contains([',', '"', '\n', '\r']) {
        let mut e = String::with_capacity(s.len() + 2);
        e.push('"');
        for c in s.chars() {
            if c == '"' {
                e.push('"');
            }
            e.push(c);
        }
        e.push('"');
        e
    } else {
        s.to_owned()
    }
}

/// Parse CSV text into a table with the given schema. The header row must
/// match the schema's column names in order; each field is cast to the
/// column's type (empty unquoted = NULL).
pub fn from_csv(schema: Schema, text: &str) -> RelResult<Table> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(RelError::Csv("missing header row".into()));
    }
    let header = records.remove(0);
    let expected = schema.column_names();
    let got: Vec<&str> = header.iter().map(|f| f.text.as_str()).collect();
    if got != expected {
        return Err(RelError::Csv(format!(
            "header mismatch: expected {expected:?}, got {got:?}"
        )));
    }
    let mut rows: Vec<Row> = Vec::with_capacity(records.len());
    for rec in records {
        if rec.len() != schema.arity() {
            return Err(RelError::Csv(format!(
                "record has {} fields, schema has {}",
                rec.len(),
                schema.arity()
            )));
        }
        let mut row = Vec::with_capacity(rec.len());
        for (field, col) in rec.into_iter().zip(schema.columns()) {
            let v = if field.text.is_empty() && !field.quoted {
                Value::Null
            } else {
                crate::algebra::cast_text(&field.text, col.data_type)?
            };
            row.push(v);
        }
        rows.push(row);
    }
    Table::from_rows(schema, rows)
}

struct Field {
    text: String,
    quoted: bool,
}

fn parse_records(text: &str) -> RelResult<Vec<Vec<Field>>> {
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            '"' => return Err(RelError::Csv("stray quote mid-field".into())),
            ',' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted,
                });
                quoted = false;
            }
            '\r' => {}
            '\n' => {
                record.push(Field {
                    text: std::mem::take(&mut field),
                    quoted,
                });
                quoted = false;
                records.push(std::mem::take(&mut record));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(RelError::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || quoted || !record.is_empty() {
        record.push(Field {
            text: field,
            quoted,
        });
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(
            "export",
            vec![
                Column::new("id", DataType::Int),
                Column::new("note", DataType::Text),
                Column::new("flag", DataType::Bool),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_with_nulls_and_quoting() {
        let t = Table::from_rows(
            schema(),
            vec![
                vec![1.into(), "plain".into(), true.into()],
                vec![2.into(), "has, comma".into(), false.into()],
                vec![3.into(), "has \"quote\"".into(), Value::Null],
                vec![Value::Null, "".into(), true.into()],
            ],
        )
        .unwrap();
        let csv = to_csv(&t);
        let back = from_csv(schema(), &csv).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn empty_quoted_is_empty_string_not_null() {
        let csv = "id,note,flag\n1,\"\",TRUE\n2,,FALSE\n";
        let t = from_csv(schema(), csv).unwrap();
        assert_eq!(t.rows()[0][1], Value::text(""));
        assert!(t.rows()[1][1].is_null());
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "id,wrong,flag\n";
        assert!(matches!(from_csv(schema(), csv), Err(RelError::Csv(_))));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "id,note,flag\n1,x\n";
        assert!(matches!(from_csv(schema(), csv), Err(RelError::Csv(_))));
    }

    #[test]
    fn bad_cast_reported() {
        let csv = "id,note,flag\nnotanint,x,TRUE\n";
        assert!(from_csv(schema(), csv).is_err());
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let csv = "id,note,flag\r\n1,x,TRUE\r\n2,y,FALSE";
        let t = from_csv(schema(), csv).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let t = Table::from_rows(
            schema(),
            vec![vec![1.into(), "line1\nline2".into(), true.into()]],
        )
        .unwrap();
        let back = from_csv(schema(), &to_csv(&t)).unwrap();
        assert_eq!(back.rows()[0][1], Value::text("line1\nline2"));
    }
}
