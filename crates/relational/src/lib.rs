//! # guava-relational
//!
//! The relational substrate underneath the GUAVA/MultiClass reproduction:
//! an embedded, in-memory relational engine with typed values, schemas,
//! primary-keyed tables, a scalar expression language, and a relational
//! algebra evaluator covering selection, projection, joins, union,
//! distinct, aggregation, sorting, and the pivot/un-pivot pair required by
//! generic (Entity–Attribute–Value) contributor layouts.
//!
//! In the paper's architecture (Figure 1 / Figure 6) this crate plays the
//! role of every concrete database: the contributors' physical databases,
//! the temporary databases between ETL components, and the warehouse's
//! study-schema storage.
//!
//! Plans evaluate through an [`exec::Executor`] session: a streaming,
//! batch-at-a-time engine that fuses Select/Project/Rename towers,
//! lowers fused expressions onto columnar batch kernels
//! ([`exec::ExecMode::Vectorized`], the default), and, above a
//! cardinality threshold, runs scans morsel-parallel with a
//! work-stealing scheduler ([`exec::ExecConfig`], `GUAVA_EXEC_THREADS`,
//! `GUAVA_EXEC_MODE`). Every mode produces byte-identical output —
//! DESIGN.md §9–§11 document the execution model, and the original
//! tree-walking interpreter survives as
//! [`exec::ExecMode::Materialized`] / [`algebra::Plan::eval_materialized`],
//! the differential-testing oracle.
//!
//! ```
//! use guava_relational::prelude::*;
//!
//! let schema = Schema::new("procedures", vec![
//!     Column::required("id", DataType::Int),
//!     Column::new("hypoxia", DataType::Bool),
//! ]).unwrap().with_primary_key(&["id"]).unwrap();
//!
//! let mut db = Database::new("cori");
//! db.create_table(Table::from_rows(schema, vec![
//!     vec![Value::Int(1), Value::Bool(true)],
//!     vec![Value::Int(2), Value::Bool(false)],
//! ]).unwrap()).unwrap();
//!
//! let hypoxic = Plan::scan("procedures")
//!     .select(Expr::col("hypoxia").eq(Expr::lit(true)))
//!     .eval(&db)
//!     .unwrap();
//! assert_eq!(hypoxic.len(), 1);
//! ```

pub mod algebra;
pub mod csv;
pub mod database;
pub mod delta;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimize;
pub mod rank;
pub mod schema;
pub mod segment;
pub mod stats;
pub mod table;
pub mod value;

/// Convenient glob-import of the substrate's core types.
pub mod prelude {
    pub use crate::algebra::{AggFunc, Aggregate, JoinKind, Plan};
    pub use crate::database::{Catalog, Database};
    pub use crate::delta::{
        table_fingerprint, Change, DeltaCatalog, DeltaPlan, DeltaSet, Patch, TableChanges,
        TableDelta,
    };
    pub use crate::error::{RelError, RelResult};
    pub use crate::exec::{ExecConfig, ExecMode, Executor, StorageMode};
    pub use crate::expr::{BinOp, Expr};
    pub use crate::optimize::optimize;
    pub use crate::schema::{Column, Schema};
    pub use crate::stats::{
        explain_plan, optimize_with_stats, ColumnStats, DistinctSketch, PlanCost, StatsCatalog,
        TableStats,
    };
    pub use crate::table::{Row, Table};
    pub use crate::value::{DataType, Value};
}

pub use prelude::*;
