//! Typed scalar values and data types for the relational substrate.
//!
//! The paper's contributor databases, temporary databases (Figure 6), and
//! study-schema tables (Figure 7) all hold rows of scalar values. We use a
//! compact enum with a *total* ordering (nulls sort first) so that values can
//! be used as keys in sorted containers, joins, and indexes without panics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical type of a column or a scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean (`yes/no` controls such as check boxes).
    Bool,
    /// 64-bit signed integer (counts, codes, "packs per day").
    Int,
    /// 64-bit float (measurements, derived quantities such as tumor volume).
    Float,
    /// UTF-8 text (free-text boxes, drop-down captions).
    Text,
    /// Calendar date stored as days since 1970-01-01 (procedure dates).
    Date,
}

impl DataType {
    /// Human-readable name, used in error messages and schema printouts.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
        }
    }

    /// Whether a value of type `from` may be stored in a column of type
    /// `self` without an explicit cast. We allow Int → Float widening,
    /// mirroring what SQL implementations do implicitly.
    pub fn accepts(self, from: DataType) -> bool {
        self == from || (self == DataType::Float && from == DataType::Int)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value, nullable. `Null` is typeless: it is accepted by every
/// column type, compares less than every other value, and propagates through
/// arithmetic — the behaviour analysts see for unanswered UI controls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    /// Days since the Unix epoch; see [`Value::date_from_ymd`].
    Date(i64),
}

impl Value {
    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Build a `Date` from a calendar date using a proleptic Gregorian
    /// civil-day count (Howard Hinnant's `days_from_civil` algorithm).
    pub fn date_from_ymd(year: i32, month: u32, day: u32) -> Value {
        Value::Date(days_from_civil(year, month, day))
    }

    /// Numeric view used by arithmetic: integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style equality: `Null` equals nothing (returns `None`), numeric
    /// types compare by value across Int/Float.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL-style ordering comparison: `None` when either side is null or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering over *all* values: `Null` first, then Bool, numbers
    /// (Int and Float interleaved by numeric value), Text, Date. Used for
    /// sorting, grouping, and index keys, where every pair must compare.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
                Date(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    /// Structural equality consistent with [`Value::total_cmp`] (so `Null ==
    /// Null` and `Int(1) == Float(1.0)`). SQL three-valued equality is
    /// [`Value::sql_eq`].
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because total_cmp treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

/// Dates render as ISO-8601; floats keep a trailing `.0` so they stay
/// distinguishable from ints in printed tables.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => {
                let (y, m, dd) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian calendar date.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vs = [
            Value::Int(3),
            Value::Null,
            Value::text("a"),
            Value::Bool(true),
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(true));
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Int(3).total_cmp(&Value::Float(2.5)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn sql_cmp_across_numeric_types() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2006, 3, 26),
            (1899, 12, 31),
            (2026, 7, 6),
        ] {
            let v = Value::date_from_ymd(y, m, d);
            if let Value::Date(z) = v {
                assert_eq!(civil_from_days(z), (y, m, d));
            } else {
                unreachable!()
            }
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn date_display_iso() {
        assert_eq!(Value::date_from_ymd(2006, 3, 26).to_string(), "2006-03-26");
    }

    #[test]
    fn display_distinguishes_float() {
        assert_eq!(Value::Int(2).to_string(), "2");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
    }

    #[test]
    fn accepts_widening() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(DataType::Text.accepts(DataType::Text));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Int(2));
        assert!(s.contains(&Value::Float(2.0)));
    }

    #[test]
    fn option_into_value() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(5i64)), Value::Int(5));
    }
}
