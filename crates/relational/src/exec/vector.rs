//! Columnar batch kernels for vectorized `Expr` evaluation.
//!
//! This module is the MonetDB/X100-style execution lane behind
//! [`ExecMode::Vectorized`](super::ExecMode::Vectorized): instead of calling
//! `Expr::eval` once per row — one enum dispatch, one `schema.index_of`
//! name lookup, and one boxed `Value` allocation per column reference per
//! row — the fused pipeline hands a whole batch (one scan batch or one
//! morsel, [`super::BATCH_SIZE`] rows) to [`run_batch`], which:
//!
//! 1. **Builds lanes** ([`ColumnBatch`]): for each column a stage actually
//!    references, the `Value`s are shredded once into a typed array
//!    (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`, borrowed `&str`s, date days)
//!    plus a null mask. Columns whose stored values do not all match the
//!    declared type — notably FLOAT columns holding widened INT values,
//!    which must round-trip losslessly — keep a *row fallback lane* that
//!    reads `Value`s straight out of the batch rows.
//! 2. **Runs compiled kernels** ([`Kernel`]): comparison, arithmetic, and
//!    boolean loops over the lanes produce a selection mask for `Select`
//!    stages and output columns for `Project` stages. Operand combinations
//!    without a specialized loop fall back to a per-row loop over
//!    `expr::eval_bin` — the same function the row path calls — so the
//!    scalar semantics cannot drift.
//! 3. **Falls back per expression**: `CASE` and `COALESCE` evaluate their
//!    branches lazily in the row path (a skipped branch's error must not
//!    surface), so [`Kernel::compile`] refuses them — and unresolvable
//!    column names, which must fail per evaluated row, not at compile time
//!    — and the stage driver evaluates those expressions row-at-a-time via
//!    `Expr::eval` inside the same batch walk.
//!
//! # Error parity
//!
//! The row path stops at the first failing row; within a row it evaluates
//! projection expressions left-to-right and each expression tree
//! depth-first left-to-right (AND/OR do **not** short-circuit), then
//! validates the projected row column-by-column. The vectorized path
//! evaluates column-at-a-time, so it may *compute* past a failing row; to
//! report identically it records every error keyed by **original row
//! index** in an [`ErrAcc`] (first error per row wins, matching depth-first
//! order because kernels run in exactly that order), deselects failing rows
//! so later stages skip them (the row path never reaches a later stage for
//! a row that already failed), and finally reports the lowest-row error —
//! the same first-error-in-row-order rule the morsel merge uses (DESIGN.md
//! §10), which is what keeps `run_batch` a drop-in replacement inside
//! morsel workers.
//!
//! Kernels never evaluate deselected rows in ways that can fail: loops
//! either skip unselected rows outright or compute only infallible
//! branchless forms over them, so a row dropped by an earlier filter can
//! never contribute an error the row path would not report.

use super::batch::{ColumnBatch, Lane};
use super::Stage;
use crate::error::{RelError, RelResult};
use crate::expr::{eval_bin, BinOp, Expr};
use crate::schema::{Column, Schema};
use crate::table::Row;
use crate::value::{DataType, Value};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Compiled stage programs
// ---------------------------------------------------------------------------

/// A compiled expression: a tree of column kernels, or the row-fallback
/// marker for expressions outside the kernel catalog.
pub(super) enum ExprProg {
    Kernel(Kernel),
    /// Evaluate via `Expr::eval` row-at-a-time inside the batch walk.
    Row,
}

/// One fused pipeline stage, compiled for vectorized execution. Parallel to
/// [`Stage`]: the driver walks both slices together.
pub(super) enum StageProg {
    /// σ — produce a selection update from the predicate kernel (`None`
    /// falls back to `Expr::matches` per selected row).
    Filter(Option<Kernel>),
    /// π — one program per output expression, in output-column order.
    Map(Vec<ExprProg>),
}

/// Compile every stage of a fused pipeline. Infallible: anything the
/// kernel compiler cannot express simply keeps the row path.
pub(super) fn compile_stages(stages: &[Stage<'_>]) -> Vec<StageProg> {
    stages
        .iter()
        .map(|stage| match stage {
            Stage::Filter { predicate, schema } => {
                StageProg::Filter(Kernel::compile(predicate, schema))
            }
            Stage::Map {
                exprs, in_schema, ..
            } => StageProg::Map(
                exprs
                    .iter()
                    .map(|(_, e)| {
                        Kernel::compile(e, in_schema).map_or(ExprProg::Row, ExprProg::Kernel)
                    })
                    .collect(),
            ),
        })
        .collect()
}

/// A vectorizable expression with column references resolved to positions.
/// Mirrors [`Expr`] minus `Case`/`Coalesce` (lazy branch semantics — see
/// module docs) and minus unresolved column names.
pub(super) enum Kernel {
    Col(usize),
    Lit(Value),
    Bin(BinOp, Box<Kernel>, Box<Kernel>),
    Not(Box<Kernel>),
    Neg(Box<Kernel>),
    IsNull(Box<Kernel>),
    IsNotNull(Box<Kernel>),
    InList(Box<Kernel>, Vec<Value>),
}

impl Kernel {
    /// Lower `expr` against `schema`, or `None` if any part of the tree
    /// must stay on the row path.
    pub(super) fn compile(expr: &Expr, schema: &Schema) -> Option<Kernel> {
        Some(match expr {
            Expr::Col(name) => Kernel::Col(schema.index_of(name)?),
            Expr::Lit(v) => Kernel::Lit(v.clone()),
            Expr::Bin(op, a, b) => Kernel::Bin(
                *op,
                Box::new(Kernel::compile(a, schema)?),
                Box::new(Kernel::compile(b, schema)?),
            ),
            Expr::Not(e) => Kernel::Not(Box::new(Kernel::compile(e, schema)?)),
            Expr::Neg(e) => Kernel::Neg(Box::new(Kernel::compile(e, schema)?)),
            Expr::IsNull(e) => Kernel::IsNull(Box::new(Kernel::compile(e, schema)?)),
            Expr::IsNotNull(e) => Kernel::IsNotNull(Box::new(Kernel::compile(e, schema)?)),
            Expr::InList(e, vs) => {
                Kernel::InList(Box::new(Kernel::compile(e, schema)?), vs.clone())
            }
            Expr::Coalesce(_) | Expr::Case { .. } => return None,
        })
    }

    /// The same kernel with every column reference `j` replaced by
    /// `mapping[j]` — how filters compiled against a passthrough Map's
    /// output schema are re-targeted at the Map's input columns, letting
    /// the whole filter tower run over one batch without materializing
    /// the projected rows in between.
    fn remap(&self, mapping: &[usize]) -> Kernel {
        match self {
            Kernel::Col(j) => Kernel::Col(mapping[*j]),
            Kernel::Lit(v) => Kernel::Lit(v.clone()),
            Kernel::Bin(op, a, b) => {
                Kernel::Bin(*op, Box::new(a.remap(mapping)), Box::new(b.remap(mapping)))
            }
            Kernel::Not(e) => Kernel::Not(Box::new(e.remap(mapping))),
            Kernel::Neg(e) => Kernel::Neg(Box::new(e.remap(mapping))),
            Kernel::IsNull(e) => Kernel::IsNull(Box::new(e.remap(mapping))),
            Kernel::IsNotNull(e) => Kernel::IsNotNull(Box::new(e.remap(mapping))),
            Kernel::InList(e, vs) => Kernel::InList(Box::new(e.remap(mapping)), vs.clone()),
        }
    }

    /// Column positions referenced by this kernel tree (with duplicates).
    fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            Kernel::Col(i) => out.push(*i),
            Kernel::Lit(_) => {}
            Kernel::Bin(_, a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            Kernel::Not(e) | Kernel::Neg(e) | Kernel::IsNull(e) | Kernel::IsNotNull(e) => {
                e.collect_cols(out)
            }
            Kernel::InList(e, _) => e.collect_cols(out),
        }
    }
}

// ---------------------------------------------------------------------------
// Error accumulation
// ---------------------------------------------------------------------------

/// Row-ordered error accumulator: the first error recorded for a row wins
/// (kernels run in the row path's depth-first order, so that is the error
/// the row path would raise), and [`ErrAcc::first`] yields the lowest-row
/// entry — the globally first failing row.
#[derive(Default)]
pub(super) struct ErrAcc {
    errs: BTreeMap<usize, RelError>,
}

impl ErrAcc {
    fn record(&mut self, row: usize, err: RelError) {
        self.errs.entry(row).or_insert(err);
    }

    fn first(self) -> Option<RelError> {
        self.errs.into_iter().next().map(|(_, e)| e)
    }
}

// Column lanes ([`Lane`], [`ColumnBatch`]) live in `exec::batch` — the
// blocking operators in `exec::blocking` shred batches with the same
// machinery, so the lane contract is defined once for both consumers.

// ---------------------------------------------------------------------------
// Kernel outputs and operand views
// ---------------------------------------------------------------------------

/// Result of evaluating one kernel over a batch. Lanes are only valid at
/// selected row positions; unselected slots hold nulls/garbage that no
/// consumer observes.
enum Out {
    /// Same value for every row.
    Const(Value),
    /// The kernel is a bare column reference; resolve through the batch.
    ColRef(usize),
    Int(Vec<i64>, Vec<bool>),
    Float(Vec<f64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    /// Generic row-fallback output.
    Vals(Vec<Value>),
}

/// A borrowed, resolved operand: what the op loops actually read.
enum View<'v, 'a> {
    Const(&'v Value),
    Int(&'v [i64], &'v [bool]),
    Float(&'v [f64], &'v [bool]),
    Bool(&'v [bool], &'v [bool]),
    Str(&'v [&'a str], &'v [bool]),
    Date(&'v [i64], &'v [bool]),
    /// Dictionary-encoded TEXT from segment storage: values are
    /// `dict[codes[i]]`, read through the codes without decoding except
    /// where a consumer materializes the value.
    Dict {
        codes: &'v [u32],
        nulls: &'v [bool],
        dict: &'a [String],
    },
    /// Column `c` through the row fallback lane.
    Rows(usize),
    Vals(&'v [Value]),
}

fn view<'v, 'a>(out: &'v Out, batch: &'v ColumnBatch<'a>) -> View<'v, 'a> {
    match out {
        Out::Const(v) => View::Const(v),
        Out::ColRef(c) => match &batch.lanes[*c] {
            Some(Lane::Int { vals, nulls }) => View::Int(vals, nulls),
            Some(Lane::Float { vals, nulls }) => View::Float(vals, nulls),
            Some(Lane::Bool { vals, nulls }) => View::Bool(vals, nulls),
            Some(Lane::Str { vals, nulls }) => View::Str(vals, nulls),
            Some(Lane::Date { vals, nulls }) => View::Date(vals, nulls),
            Some(Lane::Dict { codes, nulls, dict }) => View::Dict { codes, nulls, dict },
            Some(Lane::Vals(vals)) => View::Vals(vals),
            Some(Lane::Rows) | None => View::Rows(*c),
        },
        Out::Int(vals, nulls) => View::Int(vals, nulls),
        Out::Float(vals, nulls) => View::Float(vals, nulls),
        Out::Bool(vals, nulls) => View::Bool(vals, nulls),
        Out::Vals(vals) => View::Vals(vals),
    }
}

impl View<'_, '_> {
    /// Materialize row `i` as a `Value` (exact — row-lane and `Vals` reads
    /// return the stored value, typed lanes rebuild it losslessly).
    fn get(&self, batch: &ColumnBatch<'_>, i: usize) -> Value {
        match self {
            View::Const(v) => (*v).clone(),
            View::Int(vals, nulls) => lane_value(nulls, i, || Value::Int(vals[i])),
            View::Float(vals, nulls) => lane_value(nulls, i, || Value::Float(vals[i])),
            View::Bool(vals, nulls) => lane_value(nulls, i, || Value::Bool(vals[i])),
            View::Str(vals, nulls) => lane_value(nulls, i, || Value::text(vals[i])),
            View::Date(vals, nulls) => lane_value(nulls, i, || Value::Date(vals[i])),
            View::Dict { codes, nulls, dict } => {
                lane_value(nulls, i, || Value::text(dict[codes[i] as usize].as_str()))
            }
            View::Rows(c) => batch.rows[i][*c].clone(),
            View::Vals(vals) => vals[i].clone(),
        }
    }

    fn is_null(&self, batch: &ColumnBatch<'_>, i: usize) -> bool {
        match self {
            View::Const(v) => v.is_null(),
            View::Int(_, nulls)
            | View::Float(_, nulls)
            | View::Bool(_, nulls)
            | View::Str(_, nulls)
            | View::Date(_, nulls)
            | View::Dict { nulls, .. } => nulls[i],
            View::Rows(c) => batch.rows[i][*c].is_null(),
            View::Vals(vals) => vals[i].is_null(),
        }
    }
}

fn lane_value(nulls: &[bool], i: usize, v: impl FnOnce() -> Value) -> Value {
    if nulls[i] {
        Value::Null
    } else {
        v()
    }
}

// ---------------------------------------------------------------------------
// Specialized operand classes
// ---------------------------------------------------------------------------

/// A numeric operand for the arithmetic/comparison fast loops: a typed
/// lane or a non-null numeric constant.
enum Num<'v> {
    Ints(&'v [i64], &'v [bool]),
    Floats(&'v [f64], &'v [bool]),
    IntConst(i64),
    FloatConst(f64),
}

impl Num<'_> {
    fn classify<'v>(v: &View<'v, '_>) -> Option<Num<'v>> {
        match v {
            View::Int(vals, nulls) => Some(Num::Ints(vals, nulls)),
            View::Float(vals, nulls) => Some(Num::Floats(vals, nulls)),
            View::Const(Value::Int(i)) => Some(Num::IntConst(*i)),
            View::Const(Value::Float(f)) => Some(Num::FloatConst(*f)),
            _ => None,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, Num::Ints(..) | Num::IntConst(_))
    }

    fn null_at(&self, i: usize) -> bool {
        match self {
            Num::Ints(_, nulls) | Num::Floats(_, nulls) => nulls[i],
            _ => false,
        }
    }

    fn i64_at(&self, i: usize) -> i64 {
        match self {
            Num::Ints(vals, _) => vals[i],
            Num::IntConst(c) => *c,
            _ => unreachable!("i64_at on a float operand"),
        }
    }

    fn f64_at(&self, i: usize) -> f64 {
        match self {
            Num::Ints(vals, _) => vals[i] as f64,
            Num::Floats(vals, _) => vals[i],
            Num::IntConst(c) => *c as f64,
            Num::FloatConst(c) => *c,
        }
    }

    /// Rebuild the exact `Value` at row `i`, for delegated error messages.
    fn value_at(&self, i: usize) -> Value {
        match self {
            Num::Ints(vals, nulls) => lane_value(nulls, i, || Value::Int(vals[i])),
            Num::Floats(vals, nulls) => lane_value(nulls, i, || Value::Float(vals[i])),
            Num::IntConst(c) => Value::Int(*c),
            Num::FloatConst(c) => Value::Float(*c),
        }
    }
}

/// A boolean operand for the AND/OR fast loop: a Bool lane, a Bool
/// constant, or the NULL constant.
enum BoolOp<'v> {
    Lane(&'v [bool], &'v [bool]),
    Const(Option<bool>),
}

impl BoolOp<'_> {
    fn classify<'v>(v: &View<'v, '_>) -> Option<BoolOp<'v>> {
        match v {
            View::Bool(vals, nulls) => Some(BoolOp::Lane(vals, nulls)),
            View::Const(Value::Bool(b)) => Some(BoolOp::Const(Some(*b))),
            View::Const(Value::Null) => Some(BoolOp::Const(None)),
            _ => None,
        }
    }

    fn at(&self, i: usize) -> Option<bool> {
        match self {
            BoolOp::Lane(vals, nulls) => (!nulls[i]).then(|| vals[i]),
            BoolOp::Const(c) => *c,
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel evaluation
// ---------------------------------------------------------------------------

impl Kernel {
    /// Evaluate over `batch`, computing only rows with `sel[i]` set
    /// wherever evaluation can fail or allocate. Errors are recorded per
    /// current-batch row into `errs`; output slots for unselected or
    /// failed rows hold nulls that no consumer reads.
    fn eval(&self, batch: &ColumnBatch<'_>, sel: &[bool], errs: &mut ErrAcc) -> Out {
        let n = batch.len();
        match self {
            Kernel::Col(c) => Out::ColRef(*c),
            Kernel::Lit(v) => Out::Const(v.clone()),
            Kernel::Bin(op, a, b) => {
                let l = a.eval(batch, sel, errs);
                let r = b.eval(batch, sel, errs);
                eval_bin_vec(*op, &l, &r, batch, sel, errs)
            }
            Kernel::Not(e) => {
                let v = e.eval(batch, sel, errs);
                match view(&v, batch) {
                    View::Bool(vals, nulls) => {
                        Out::Bool(vals.iter().map(|b| !b).collect(), nulls.to_vec())
                    }
                    View::Const(Value::Null) => Out::Const(Value::Null),
                    View::Const(Value::Bool(b)) => Out::Const(Value::Bool(!b)),
                    w => masked_unary(n, sel, errs, |i| match w.get(batch, i) {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        v => Err(RelError::Eval(format!("NOT applied to non-boolean {v}"))),
                    }),
                }
            }
            Kernel::Neg(e) => {
                let v = e.eval(batch, sel, errs);
                match view(&v, batch) {
                    View::Float(vals, nulls) => {
                        Out::Float(vals.iter().map(|f| -f).collect(), nulls.to_vec())
                    }
                    w => masked_unary(n, sel, errs, |i| match w.get(batch, i) {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        v => Err(RelError::Eval(format!("unary - applied to {v}"))),
                    }),
                }
            }
            Kernel::IsNull(e) => {
                let v = e.eval(batch, sel, errs);
                is_null_out(&view(&v, batch), batch, n, false)
            }
            Kernel::IsNotNull(e) => {
                let v = e.eval(batch, sel, errs);
                is_null_out(&view(&v, batch), batch, n, true)
            }
            Kernel::InList(e, vs) => {
                let v = e.eval(batch, sel, errs);
                let w = view(&v, batch);
                masked_unary(n, sel, errs, |i| {
                    let v = w.get(batch, i);
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(vs.iter().any(|c| v.sql_eq(c) == Some(true))))
                })
            }
        }
    }
}

/// Per-selected-row loop for unary fallbacks (NOT/NEG over non-lane
/// operands, IN-list membership). Infallible rows still allocate a `Value`;
/// these shapes are rare and never on the hot scan path.
fn masked_unary(
    n: usize,
    sel: &[bool],
    errs: &mut ErrAcc,
    mut f: impl FnMut(usize) -> RelResult<Value>,
) -> Out {
    let mut out = Vec::with_capacity(n);
    for (i, &keep) in sel.iter().enumerate().take(n) {
        if !keep {
            out.push(Value::Null);
            continue;
        }
        match f(i) {
            Ok(v) => out.push(v),
            Err(e) => {
                errs.record(i, e);
                out.push(Value::Null);
            }
        }
    }
    Out::Vals(out)
}

/// IS NULL / IS NOT NULL: pure null-mask reads, branchless and infallible.
fn is_null_out(w: &View<'_, '_>, batch: &ColumnBatch<'_>, n: usize, negate: bool) -> Out {
    if let View::Const(v) = w {
        return Out::Const(Value::Bool(v.is_null() != negate));
    }
    let vals = (0..n).map(|i| w.is_null(batch, i) != negate).collect();
    Out::Bool(vals, vec![false; n])
}

/// Binary-operator dispatch: route to a specialized lane loop when both
/// operands fit a fast class, otherwise run the generic per-row loop over
/// [`eval_bin`].
fn eval_bin_vec(
    op: BinOp,
    l: &Out,
    r: &Out,
    batch: &ColumnBatch<'_>,
    sel: &[bool],
    errs: &mut ErrAcc,
) -> Out {
    let n = batch.len();
    let (lv, rv) = (view(l, batch), view(r, batch));
    // A NULL constant operand short-circuits arithmetic and ordering to
    // NULL for every row (the row path checks nulls before anything else,
    // including operand types and division by zero). AND/OR must not fold:
    // `FALSE AND NULL` is FALSE, and a non-boolean other side still errors.
    if !matches!(op, BinOp::And | BinOp::Or) {
        if let (View::Const(Value::Null), _) | (_, View::Const(Value::Null)) = (&lv, &rv) {
            return Out::Const(Value::Null);
        }
    }
    match op {
        BinOp::And | BinOp::Or => match (BoolOp::classify(&lv), BoolOp::classify(&rv)) {
            (Some(a), Some(b)) => logic_loop(op, &a, &b, n),
            _ => generic_bin(op, &lv, &rv, batch, sel, errs),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            match (Num::classify(&lv), Num::classify(&rv)) {
                (Some(a), Some(b)) => arith_loop(op, &a, &b, n, sel, errs),
                _ => generic_bin(op, &lv, &rv, batch, sel, errs),
            }
        }
        BinOp::Eq | BinOp::Ne => {
            let negate = op == BinOp::Ne;
            match (&lv, &rv) {
                _ if Num::classify(&lv).is_some() && Num::classify(&rv).is_some() => {
                    let (a, b) = (Num::classify(&lv).unwrap(), Num::classify(&rv).unwrap());
                    eq_num_loop(&a, &b, n, negate)
                }
                (View::Str(av, an), View::Str(bv, bn)) => {
                    cmp_mask_loop(n, an, bn, |i| av[i] == bv[i], negate)
                }
                (View::Str(av, an), View::Const(Value::Text(c)))
                | (View::Const(Value::Text(c)), View::Str(av, an)) => {
                    // == is symmetric, so const side order does not matter.
                    cmp_mask_loop(n, an, an, |i| av[i] == c.as_str(), negate)
                }
                (View::Dict { codes, nulls, dict }, View::Const(Value::Text(c)))
                | (View::Const(Value::Text(c)), View::Dict { codes, nulls, dict }) => {
                    // Dictionary-aware compare: test the literal against
                    // each distinct string once, then compare codes.
                    let hit: Vec<bool> = dict.iter().map(|s| s == c).collect();
                    cmp_mask_loop(n, nulls, nulls, |i| hit[codes[i] as usize], negate)
                }
                (View::Dict { codes, nulls, dict }, View::Str(bv, bn)) => {
                    cmp_mask_loop(n, nulls, bn, |i| dict[codes[i] as usize] == bv[i], negate)
                }
                (View::Str(av, an), View::Dict { codes, nulls, dict }) => {
                    cmp_mask_loop(n, an, nulls, |i| av[i] == dict[codes[i] as usize], negate)
                }
                (
                    View::Dict {
                        codes: ac,
                        nulls: an,
                        dict: ad,
                    },
                    View::Dict {
                        codes: bc,
                        nulls: bn,
                        dict: bd,
                    },
                ) => cmp_mask_loop(
                    n,
                    an,
                    bn,
                    |i| ad[ac[i] as usize] == bd[bc[i] as usize],
                    negate,
                ),
                (View::Date(av, an), View::Date(bv, bn)) => {
                    cmp_mask_loop(n, an, bn, |i| av[i] == bv[i], negate)
                }
                (View::Date(av, an), View::Const(Value::Date(c)))
                | (View::Const(Value::Date(c)), View::Date(av, an)) => {
                    cmp_mask_loop(n, an, an, |i| av[i] == *c, negate)
                }
                _ => generic_bin(op, &lv, &rv, batch, sel, errs),
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match (Num::classify(&lv), Num::classify(&rv)) {
                (Some(a), Some(b)) => ord_num_loop(op, &a, &b, n, sel, errs),
                _ => match (&lv, &rv) {
                    (View::Str(av, an), View::Str(bv, bn)) => {
                        ord_apply_loop(op, n, an, bn, |i| av[i].cmp(bv[i]))
                    }
                    (View::Str(av, an), View::Const(Value::Text(c))) => {
                        ord_apply_loop(op, n, an, an, |i| av[i].cmp(c.as_str()))
                    }
                    (View::Const(Value::Text(c)), View::Str(bv, bn)) => {
                        ord_apply_loop(op, n, bn, bn, |i| c.as_str().cmp(bv[i]))
                    }
                    (View::Dict { codes, nulls, dict }, View::Const(Value::Text(c))) => {
                        // Dictionary-aware ordering: rank the literal
                        // against each distinct string once.
                        let ords: Vec<std::cmp::Ordering> =
                            dict.iter().map(|s| s.as_str().cmp(c.as_str())).collect();
                        ord_apply_loop(op, n, nulls, nulls, |i| ords[codes[i] as usize])
                    }
                    (View::Const(Value::Text(c)), View::Dict { codes, nulls, dict }) => {
                        let ords: Vec<std::cmp::Ordering> =
                            dict.iter().map(|s| c.as_str().cmp(s.as_str())).collect();
                        ord_apply_loop(op, n, nulls, nulls, |i| ords[codes[i] as usize])
                    }
                    (View::Date(av, an), View::Date(bv, bn)) => {
                        ord_apply_loop(op, n, an, bn, |i| av[i].cmp(&bv[i]))
                    }
                    (View::Date(av, an), View::Const(Value::Date(c))) => {
                        ord_apply_loop(op, n, an, an, |i| av[i].cmp(c))
                    }
                    (View::Const(Value::Date(c)), View::Date(bv, bn)) => {
                        ord_apply_loop(op, n, bn, bn, |i| c.cmp(&bv[i]))
                    }
                    _ => generic_bin(op, &lv, &rv, batch, sel, errs),
                },
            }
        }
    }
}

/// Generic per-row binary loop: fetch both operands as `Value`s and call
/// the scalar [`eval_bin`] — parity by construction. Only selected rows
/// evaluate (the row path never reaches dropped rows).
fn generic_bin(
    op: BinOp,
    l: &View<'_, '_>,
    r: &View<'_, '_>,
    batch: &ColumnBatch<'_>,
    sel: &[bool],
    errs: &mut ErrAcc,
) -> Out {
    let n = batch.len();
    let mut out = Vec::with_capacity(n);
    for (i, &keep) in sel.iter().enumerate().take(n) {
        if !keep {
            out.push(Value::Null);
            continue;
        }
        match eval_bin(op, &l.get(batch, i), &r.get(batch, i)) {
            Ok(v) => out.push(v),
            Err(e) => {
                errs.record(i, e);
                out.push(Value::Null);
            }
        }
    }
    Out::Vals(out)
}

/// Three-valued AND/OR over boolean operands. Infallible (both sides are
/// statically boolean or NULL), so it runs branchless over all rows.
fn logic_loop(op: BinOp, a: &BoolOp<'_>, b: &BoolOp<'_>, n: usize) -> Out {
    let mut vals = vec![false; n];
    let mut nulls = vec![false; n];
    for i in 0..n {
        let v = match op {
            BinOp::And => match (a.at(i), b.at(i)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (a.at(i), b.at(i)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        match v {
            Some(b) => vals[i] = b,
            None => nulls[i] = true,
        }
    }
    Out::Bool(vals, nulls)
}

/// `+ - * /` over numeric lanes. Two INT operands stay integral with
/// wrapping arithmetic (except `/`, which produces FLOAT); any FLOAT
/// operand widens both sides to `f64`. Division by zero is the only error
/// and is recorded for selected rows only.
fn arith_loop(
    op: BinOp,
    a: &Num<'_>,
    b: &Num<'_>,
    n: usize,
    sel: &[bool],
    errs: &mut ErrAcc,
) -> Out {
    let div_err = || RelError::Eval("division by zero".into());
    if a.is_int() && b.is_int() && op != BinOp::Div {
        let mut vals = vec![0i64; n];
        let mut nulls = vec![false; n];
        for i in 0..n {
            if a.null_at(i) || b.null_at(i) {
                nulls[i] = true;
                continue;
            }
            let (x, y) = (a.i64_at(i), b.i64_at(i));
            vals[i] = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                _ => x.wrapping_mul(y),
            };
        }
        return Out::Int(vals, nulls);
    }
    if a.is_int() && b.is_int() {
        // INT / INT: division by zero checks the integer zero, then the
        // quotient widens to FLOAT exactly as the scalar path does.
        let mut vals = vec![0f64; n];
        let mut nulls = vec![false; n];
        for i in 0..n {
            if a.null_at(i) || b.null_at(i) {
                nulls[i] = true;
                continue;
            }
            let y = b.i64_at(i);
            if y == 0 {
                if sel[i] {
                    errs.record(i, div_err());
                }
                nulls[i] = true;
                continue;
            }
            vals[i] = a.i64_at(i) as f64 / y as f64;
        }
        return Out::Float(vals, nulls);
    }
    let mut vals = vec![0f64; n];
    let mut nulls = vec![false; n];
    for i in 0..n {
        if a.null_at(i) || b.null_at(i) {
            nulls[i] = true;
            continue;
        }
        let (x, y) = (a.f64_at(i), b.f64_at(i));
        vals[i] = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            _ => {
                if y == 0.0 {
                    if sel[i] {
                        errs.record(i, div_err());
                    }
                    nulls[i] = true;
                    continue;
                }
                x / y
            }
        };
    }
    Out::Float(vals, nulls)
}

/// `=` / `<>` over numeric lanes: two INT operands compare exactly; any
/// FLOAT operand compares by `f64::total_cmp`, mirroring
/// [`Value::total_cmp`]'s Int/Float interleaving (so `-0.0 <> 0.0` here,
/// exactly as in the row path). Never errors.
fn eq_num_loop(a: &Num<'_>, b: &Num<'_>, n: usize, negate: bool) -> Out {
    let mut vals = vec![false; n];
    let mut nulls = vec![false; n];
    let both_int = a.is_int() && b.is_int();
    for i in 0..n {
        if a.null_at(i) || b.null_at(i) {
            nulls[i] = true;
            continue;
        }
        let eq = if both_int {
            a.i64_at(i) == b.i64_at(i)
        } else {
            a.f64_at(i).total_cmp(&b.f64_at(i)).is_eq()
        };
        vals[i] = eq != negate;
    }
    Out::Bool(vals, nulls)
}

/// `< <= > >=` over numeric lanes. [`Value::sql_cmp`] compares *all*
/// numeric pairs — Int/Int included — through `f64::partial_cmp`, so this
/// loop does the same; an incomparable pair (NaN) delegates to the scalar
/// path for the identical error message, recorded for selected rows only.
fn ord_num_loop(
    op: BinOp,
    a: &Num<'_>,
    b: &Num<'_>,
    n: usize,
    sel: &[bool],
    errs: &mut ErrAcc,
) -> Out {
    let mut vals = vec![false; n];
    let mut nulls = vec![false; n];
    for i in 0..n {
        if a.null_at(i) || b.null_at(i) {
            nulls[i] = true;
            continue;
        }
        match a.f64_at(i).partial_cmp(&b.f64_at(i)) {
            Some(ord) => vals[i] = apply_ord(op, ord),
            None => {
                if sel[i] {
                    let e = eval_bin(op, &a.value_at(i), &b.value_at(i))
                        .expect_err("NaN comparison errors in the scalar path");
                    errs.record(i, e);
                }
                nulls[i] = true;
            }
        }
    }
    Out::Bool(vals, nulls)
}

fn apply_ord(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        _ => ord.is_ge(),
    }
}

/// Branchless equality loop over two null masks and an infallible per-row
/// predicate (strings, dates).
fn cmp_mask_loop(
    n: usize,
    an: &[bool],
    bn: &[bool],
    eq: impl Fn(usize) -> bool,
    negate: bool,
) -> Out {
    let mut vals = vec![false; n];
    let mut nulls = vec![false; n];
    for i in 0..n {
        if an[i] || bn[i] {
            nulls[i] = true;
        } else {
            vals[i] = eq(i) != negate;
        }
    }
    Out::Bool(vals, nulls)
}

/// Branchless ordering loop for totally-ordered lane pairs (strings,
/// dates): never errors, null propagates.
fn ord_apply_loop(
    op: BinOp,
    n: usize,
    an: &[bool],
    bn: &[bool],
    ord: impl Fn(usize) -> std::cmp::Ordering,
) -> Out {
    let mut vals = vec![false; n];
    let mut nulls = vec![false; n];
    for i in 0..n {
        if an[i] || bn[i] {
            nulls[i] = true;
        } else {
            vals[i] = apply_ord(op, ord(i));
        }
    }
    Out::Bool(vals, nulls)
}

// ---------------------------------------------------------------------------
// Batch driver
// ---------------------------------------------------------------------------

/// Run the compiled stage chain over one batch of shared-scan rows,
/// returning the surviving output rows or the first failing row's error
/// (in row order — see module docs). This is the vectorized replacement
/// for the per-row `apply_stages` walk; serial batches and parallel
/// morsels both call it, so the morsel merge rules apply unchanged.
pub(super) fn run_batch(
    stages: &[Stage<'_>],
    progs: &[StageProg],
    rows: &[Row],
) -> RelResult<Vec<Row>> {
    run_batch_seeded(stages, progs, rows, Vec::new())
}

/// [`run_batch`] with pre-built lanes for the first epoch's columns —
/// the zero-shred entry for segment-backed scans, which pass lanes
/// sliced straight out of columnar storage (`batch::segment_lanes`) so
/// the epoch never shreds a row. Seeded lanes must describe exactly
/// `rows` (same window, same order).
pub(super) fn run_batch_seeded<'a>(
    stages: &[Stage<'_>],
    progs: &[StageProg],
    rows: &'a [Row],
    seed: Vec<Option<Lane<'a>>>,
) -> RelResult<Vec<Row>> {
    debug_assert_eq!(stages.len(), progs.len());
    let mut errs = ErrAcc::default();
    let orig: Vec<usize> = (0..rows.len()).collect();
    let out = run_from(
        stages,
        progs,
        rows,
        &orig,
        vec![true; rows.len()],
        &mut errs,
        seed,
    );
    match errs.first() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Process `stages` over one row epoch: apply every leading filter, then
/// either gather the survivors (no stages left) or project them through
/// the first Map and recurse over the new, compacted epoch. `orig` maps
/// current positions to original batch rows so errors from different
/// epochs still order correctly. `carry` holds lanes the previous epoch's
/// Map already computed for this epoch's columns (compacted to the
/// surviving rows), so the next `ColumnBatch` skips re-shredding them —
/// this is what keeps multi-epoch arithmetic pipelines columnar end to
/// end instead of round-tripping through `Value` rows at each Map.
#[allow(clippy::too_many_arguments)]
fn run_from<'a>(
    stages: &[Stage<'_>],
    progs: &[StageProg],
    rows: &'a [Row],
    orig: &[usize],
    mut sel: Vec<bool>,
    errs: &mut ErrAcc,
    carry: Vec<Option<Lane<'a>>>,
) -> Vec<Row> {
    // Lanes are shared by every consecutive filter and the following Map
    // (if any): they all read this epoch's rows.
    let mut at = 0;
    let mut cols: Vec<usize> = Vec::new();
    while let Some(StageProg::Filter(k)) = progs.get(at) {
        if let Some(k) = k {
            k.collect_cols(&mut cols);
        }
        at += 1;
    }
    let map_at = at;
    let passthrough = passthrough_epoch(stages, progs, map_at);
    if let Some(p) = &passthrough {
        for k in &p.tail {
            k.collect_cols(&mut cols);
        }
    } else if let Some(StageProg::Map(exprs)) = progs.get(map_at) {
        for p in exprs {
            if let ExprProg::Kernel(k) = p {
                k.collect_cols(&mut cols);
            }
        }
    }
    let epoch_schema = stages.first().map(stage_in_schema);
    let batch = match epoch_schema {
        Some(s) => ColumnBatch::build_seeded(rows, s, &cols, carry),
        None => ColumnBatch {
            rows,
            lanes: Vec::new(),
        },
    };

    // Apply the leading filters in order.
    for (stage, prog) in stages.iter().zip(progs).take(map_at) {
        let (StageProg::Filter(kernel), Stage::Filter { predicate, schema }) = (prog, stage) else {
            unreachable!("stage programs parallel the stage chain");
        };
        let mut step = ErrAcc::default();
        match kernel {
            Some(k) => {
                let out = k.eval(&batch, &sel, &mut step);
                // Absorb kernel errors before applying the predicate
                // result: a failing row carries a placeholder NULL, which
                // the filter would deselect — and a deselected row's error
                // would then be dropped as if the row had been filtered
                // away before it failed.
                absorb(step, &mut sel, orig, errs);
                step = ErrAcc::default();
                apply_filter(&view(&out, &batch), &batch, &mut sel, &mut step);
            }
            None => {
                for (i, s) in sel.iter_mut().enumerate() {
                    if !*s {
                        continue;
                    }
                    match predicate.matches(schema, &rows[i]) {
                        Ok(keep) => *s = keep,
                        Err(e) => {
                            step.record(i, e);
                        }
                    }
                }
            }
        }
        absorb(step, &mut sel, orig, errs);
    }

    // A passthrough epoch consumed every remaining stage: run the
    // remapped tail filters over the same batch, then gather the mapped
    // columns straight out of the input rows — the projected rows the row
    // path materializes in between are never built.
    if let Some(p) = &passthrough {
        for k in &p.tail {
            let mut step = ErrAcc::default();
            let out = k.eval(&batch, &sel, &mut step);
            absorb(step, &mut sel, orig, errs);
            let mut step = ErrAcc::default();
            apply_filter(&view(&out, &batch), &batch, &mut sel, &mut step);
            absorb(step, &mut sel, orig, errs);
        }
        return rows
            .iter()
            .zip(&sel)
            .filter(|(_, s)| **s)
            .map(|(r, _)| p.mapping.iter().map(|&c| r[c].clone()).collect())
            .collect();
    }

    let Some(Stage::Map {
        exprs,
        in_schema,
        out_schema,
    }) = stages.get(map_at)
    else {
        // No projection left: the survivors are the output.
        return rows
            .iter()
            .zip(&sel)
            .filter(|(_, s)| **s)
            .map(|(r, _)| r.clone())
            .collect();
    };
    let Some(StageProg::Map(eprogs)) = progs.get(map_at) else {
        unreachable!("stage programs parallel the stage chain");
    };

    // Evaluate the projection expressions column-at-a-time, in output
    // order (the row path's left-to-right expression order).
    let mut outs: Vec<Out> = Vec::with_capacity(eprogs.len());
    for ((_, expr), prog) in exprs.iter().zip(eprogs) {
        let mut step = ErrAcc::default();
        let out = match prog {
            ExprProg::Kernel(k) => k.eval(&batch, &sel, &mut step),
            ExprProg::Row => masked_unary(batch.len(), &sel, &mut step, |i| {
                expr.eval(in_schema, &rows[i])
            }),
        };
        absorb(step, &mut sel, orig, errs);
        outs.push(out);
    }

    // Gather the survivors into fresh compact rows, then validate only the
    // columns whose values could possibly violate the (always-nullable)
    // projected schema — a lane of the declared type can be skipped.
    let views: Vec<View<'_, '_>> = outs.iter().map(|o| view(o, &batch)).collect();
    let lax: Vec<(usize, &Column)> = out_schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(k, col)| !out_satisfies(&views[*k], in_schema, col))
        .collect();
    let survivors = sel.iter().filter(|s| **s).count();
    let mut new_rows: Vec<Row> = Vec::with_capacity(survivors);
    let mut new_orig: Vec<usize> = Vec::with_capacity(survivors);
    let mut kept: Vec<usize> = Vec::with_capacity(survivors);
    for i in 0..batch.len() {
        if !sel[i] {
            continue;
        }
        let row: Row = views.iter().map(|v| v.get(&batch, i)).collect();
        // Columns are checked in schema order; skipped columns are
        // provably valid, so the first failure matches `check_row`. A
        // failing row is dropped from the next epoch entirely: the row
        // path stops at its error, so later stages must never see it.
        match lax.iter().find_map(|&(k, col)| col.check(&row[k]).err()) {
            Some(e) => errs.record(orig[i], e),
            None => {
                new_orig.push(orig[i]);
                new_rows.push(row);
                kept.push(i);
            }
        }
    }

    let rest = map_at + 1;
    if rest >= stages.len() {
        return new_rows;
    }
    // Thread the Map's output lanes into the next epoch: typed kernel
    // outputs and lane-backed column passthroughs, compacted to the kept
    // rows, seed the next `ColumnBatch` so chained Maps never re-shred
    // columns they just computed. The carried values are exactly what
    // `View::get` stored into `new_rows`, so the seeded lanes and the
    // rows stay in lockstep.
    let next_carry: Vec<Option<Lane<'_>>> =
        outs.iter().map(|o| carry_lane(o, &batch, &kept)).collect();
    let n = new_rows.len();
    run_from(
        &stages[rest..],
        &progs[rest..],
        &new_rows,
        &new_orig,
        vec![true; n],
        errs,
        next_carry,
    )
}

/// Compact a Map output column into a lane for the next epoch, or `None`
/// when the output has no typed columnar form (constants, mixed values,
/// or a passthrough of a column that never had a lane).
fn carry_lane<'a>(out: &Out, batch: &ColumnBatch<'a>, kept: &[usize]) -> Option<Lane<'a>> {
    fn compact<T: Copy>(vals: &[T], kept: &[usize]) -> Vec<T> {
        kept.iter().map(|&i| vals[i]).collect()
    }
    match out {
        Out::Int(vals, nulls) => Some(Lane::Int {
            vals: compact(vals, kept).into(),
            nulls: compact(nulls, kept).into(),
        }),
        Out::Float(vals, nulls) => Some(Lane::Float {
            vals: compact(vals, kept).into(),
            nulls: compact(nulls, kept).into(),
        }),
        Out::Bool(vals, nulls) => Some(Lane::Bool {
            vals: compact(vals, kept).into(),
            nulls: compact(nulls, kept).into(),
        }),
        Out::ColRef(c) => match batch.lanes.get(*c).and_then(|l| l.as_ref())? {
            Lane::Int { vals, nulls } => Some(Lane::Int {
                vals: compact(vals, kept).into(),
                nulls: compact(nulls, kept).into(),
            }),
            Lane::Float { vals, nulls } => Some(Lane::Float {
                vals: compact(vals, kept).into(),
                nulls: compact(nulls, kept).into(),
            }),
            Lane::Bool { vals, nulls } => Some(Lane::Bool {
                vals: compact(vals, kept).into(),
                nulls: compact(nulls, kept).into(),
            }),
            Lane::Str { vals, nulls } => Some(Lane::Str {
                vals: compact(vals, kept),
                nulls: compact(nulls, kept).into(),
            }),
            Lane::Date { vals, nulls } => Some(Lane::Date {
                vals: compact(vals, kept).into(),
                nulls: compact(nulls, kept).into(),
            }),
            // A passthrough of a dictionary lane decodes to strings
            // borrowed from the dictionary (still zero-copy per string).
            // Null rows must not be decoded: they carry code 0, which an
            // all-null column's empty dictionary cannot even index.
            Lane::Dict { codes, nulls, dict } => Some(Lane::Str {
                vals: kept
                    .iter()
                    .map(|&i| {
                        if nulls[i] {
                            ""
                        } else {
                            dict[codes[i] as usize].as_str()
                        }
                    })
                    .collect(),
                nulls: compact(nulls, kept).into(),
            }),
            Lane::Rows | Lane::Vals(_) => None,
        },
        Out::Const(_) | Out::Vals(_) => None,
    }
}

/// A fully-vectorizable epoch tail: a pure column-passthrough Map (every
/// output expression is a bare column reference, e.g. `project_cols` or a
/// Rename) followed only by kernel filters. The filters are remapped onto
/// the Map's *input* columns so the whole tower runs over one batch.
struct Passthrough {
    /// Output column `k` is input column `mapping[k]`.
    mapping: Vec<usize>,
    /// The remaining filters, remapped onto the input columns.
    tail: Vec<Kernel>,
}

/// Detect a passthrough epoch at `map_at`. Requires the Map's output
/// schema to be statically satisfied by the passed-through columns (so
/// the per-row output check can be skipped entirely — a bare passthrough
/// can then never fail) and every remaining stage to be a kernel filter.
fn passthrough_epoch(
    stages: &[Stage<'_>],
    progs: &[StageProg],
    map_at: usize,
) -> Option<Passthrough> {
    let Some(Stage::Map {
        in_schema,
        out_schema,
        ..
    }) = stages.get(map_at)
    else {
        return None;
    };
    let Some(StageProg::Map(eprogs)) = progs.get(map_at) else {
        return None;
    };
    if map_at + 1 >= progs.len() {
        // Nothing after the Map: the normal gather is already final.
        return None;
    }
    let mut mapping = Vec::with_capacity(eprogs.len());
    for p in eprogs {
        match p {
            ExprProg::Kernel(Kernel::Col(c)) => mapping.push(*c),
            _ => return None,
        }
    }
    for (col, &src) in out_schema.columns().iter().zip(&mapping) {
        if !col.nullable || !col.data_type.accepts(in_schema.columns()[src].data_type) {
            return None;
        }
    }
    let mut tail = Vec::with_capacity(progs.len() - map_at - 1);
    for p in &progs[map_at + 1..] {
        match p {
            StageProg::Filter(Some(k)) => tail.push(k.remap(&mapping)),
            _ => return None,
        }
    }
    Some(Passthrough { mapping, tail })
}

fn stage_in_schema<'s>(stage: &'s Stage<'_>) -> &'s Schema {
    match stage {
        Stage::Filter { schema, .. } => schema,
        Stage::Map { in_schema, .. } => in_schema,
    }
}

/// Merge one kernel's errors into the batch accumulator (translated to
/// original row indexes) and deselect the failing rows so no later kernel
/// or stage evaluates them — the row path stops at the first error, so a
/// failed row must contribute nothing further.
fn absorb(step: ErrAcc, sel: &mut [bool], orig: &[usize], errs: &mut ErrAcc) {
    for (i, e) in step.errs {
        if sel[i] {
            sel[i] = false;
            errs.record(orig[i], e);
        }
    }
}

/// AND a predicate result into the selection: TRUE keeps, FALSE and NULL
/// drop, and a non-boolean value is the row path's "predicate evaluated to
/// non-boolean" error for every selected row it reaches.
fn apply_filter(w: &View<'_, '_>, batch: &ColumnBatch<'_>, sel: &mut [bool], errs: &mut ErrAcc) {
    match w {
        View::Bool(vals, nulls) => {
            for (i, s) in sel.iter_mut().enumerate() {
                *s = *s && !nulls[i] && vals[i];
            }
        }
        View::Const(Value::Bool(true)) => {}
        View::Const(Value::Bool(false)) | View::Const(Value::Null) => sel.fill(false),
        w => {
            for (i, s) in sel.iter_mut().enumerate() {
                if !*s {
                    continue;
                }
                match w.get(batch, i) {
                    Value::Bool(b) => *s = b,
                    Value::Null => *s = false,
                    v => {
                        errs.record(
                            i,
                            RelError::Eval(format!("predicate evaluated to non-boolean {v}")),
                        );
                    }
                }
            }
        }
    }
}

/// Can every value this output produces be stored in `col` without a
/// per-row check? Projected schemas are always nullable (see
/// `project_output_schema`), so this is mostly a static type check; the
/// row fallback lane and generic outputs always re-check.
fn out_satisfies(w: &View<'_, '_>, in_schema: &Schema, col: &Column) -> bool {
    if !col.nullable {
        return false;
    }
    match w {
        View::Const(v) => col.check(v).is_ok(),
        View::Int(..) => col.data_type.accepts(DataType::Int),
        View::Float(..) => col.data_type.accepts(DataType::Float),
        View::Bool(..) => col.data_type == DataType::Bool,
        View::Str(..) | View::Dict { .. } => col.data_type == DataType::Text,
        View::Date(..) => col.data_type == DataType::Date,
        // A raw column passthrough holds values of the input column's
        // declared type (or INTs widened into a FLOAT column, which only a
        // FLOAT output column accepts — covered by `accepts`).
        View::Rows(c) => col.data_type.accepts(in_schema.columns()[*c].data_type),
        View::Vals(_) => false,
    }
}
