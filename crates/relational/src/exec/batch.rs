//! The executor's batch currency: row chunks, typed column lanes, and the
//! lane-level key kernels shared by every physical operator.
//!
//! [`Batch`] is the single unit of data flowing between
//! [`PhysicalOperator`](super::ops::PhysicalOperator)s: a contiguous chunk
//! of rows that is either a zero-copy window over a table's `Arc`-shared
//! storage or an owned vector produced by an upstream operator. Blocking
//! operators collect their batches into a [`Gathered`] input, which stays
//! zero-copy when the whole input is one shared window (a bare scan).
//!
//! [`Lane`] / [`ColumnBatch`] are the columnar decomposition used by the
//! vectorized kernels (`exec::vector`) *and* by the lane-aware blocking
//! kernels (`exec::blocking`): each referenced column is shredded once
//! into a typed array plus a null mask, with [`Lane::Rows`] as the
//! fallback for columns whose stored values are not uniformly of the
//! declared type (e.g. INT values widened into a FLOAT column, which must
//! round-trip losslessly).
//!
//! # Key hashing
//!
//! [`key_hashes`] computes one 64-bit hash per row over a set of key
//! columns, columnar where lanes permit. The per-value contribution mixes
//! the same `(tag, payload)` pairs as `Value`'s `Hash` impl — in
//! particular `Int(i)` hashes through `(i as f64).to_bits()` with the
//! same tag as `Float`, so values equal under `Value::total_cmp`
//! (`Int(2) == Float(2.0)`) always hash equally, whether the hash was
//! computed from a typed lane or from the row fallback. Hash-equal
//! candidates are verified with [`keys_eq`] (plain `Value` equality, i.e.
//! `total_cmp`), so collisions cost a comparison, never correctness.

use crate::schema::Schema;
use crate::segment::{ColumnData, Segment};
use crate::table::Row;
use crate::value::{DataType, Value};
use std::borrow::Cow;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

/// One unit of data flowing between physical operators: a chunk of rows,
/// all matching the producing operator's output schema. `Shared` batches
/// are zero-copy windows over a table's `Arc`-shared storage; `Owned`
/// batches carry rows built by an upstream operator.
pub(super) enum Batch {
    /// Rows `lo..hi` of shared table storage. When the window is the
    /// row-form image of a sealed column segment, `seg` carries it so the
    /// vectorized pipeline can slice typed lanes straight out of columnar
    /// storage instead of shredding (`rows[lo..lo + seg.len()]` holds
    /// exactly the segment's rows; `take_prefix` only ever shrinks `hi`,
    /// so the live window is always segment rows `0..(hi - lo)`).
    Shared {
        rows: Arc<Vec<Row>>,
        lo: usize,
        hi: usize,
        seg: Option<Arc<Segment>>,
    },
    Owned(Vec<Row>),
}

impl Batch {
    /// A zero-copy batch over a table's entire shared storage.
    pub(super) fn shared(rows: Arc<Vec<Row>>) -> Batch {
        let hi = rows.len();
        Batch::Shared {
            rows,
            lo: 0,
            hi,
            seg: None,
        }
    }

    /// A zero-copy window `lo..hi` of shared storage, optionally backed
    /// by the sealed segment whose rows the window images.
    pub(super) fn shared_window(
        rows: Arc<Vec<Row>>,
        lo: usize,
        hi: usize,
        seg: Option<Arc<Segment>>,
    ) -> Batch {
        debug_assert!(seg.as_ref().is_none_or(|s| s.len() == hi - lo));
        Batch::Shared { rows, lo, hi, seg }
    }

    pub(super) fn len(&self) -> usize {
        match self {
            Batch::Shared { lo, hi, .. } => hi - lo,
            Batch::Owned(rows) => rows.len(),
        }
    }

    pub(super) fn as_slice(&self) -> &[Row] {
        match self {
            Batch::Shared { rows, lo, hi, .. } => &rows[*lo..*hi],
            Batch::Owned(rows) => rows,
        }
    }

    /// The sealed segment backing this batch, if any. The live window
    /// covers segment rows `0..self.len()`.
    pub(super) fn segment(&self) -> Option<&Arc<Segment>> {
        match self {
            Batch::Shared { seg, .. } => seg.as_ref(),
            Batch::Owned(_) => None,
        }
    }

    /// Does this batch cover its shared storage end to end? Whole-table
    /// windows are what the morsel-parallel kernels partition.
    pub(super) fn is_full_shared(&self) -> bool {
        matches!(self, Batch::Shared { rows, lo: 0, hi, .. } if *hi == rows.len())
    }

    /// The first `n` rows (for `Limit`); shared windows just shrink.
    pub(super) fn take_prefix(self, n: usize) -> Batch {
        match self {
            Batch::Shared { rows, lo, hi, seg } => {
                let hi = usize::min(hi, lo + n);
                Batch::Shared { rows, lo, hi, seg }
            }
            Batch::Owned(mut rows) => {
                rows.truncate(n);
                Batch::Owned(rows)
            }
        }
    }

    /// Take ownership of the rows, cloning only shared storage that is
    /// still referenced elsewhere (the same cost `Table::into_rows` pays).
    pub(super) fn into_rows(self) -> Vec<Row> {
        match self {
            Batch::Shared { rows, lo, hi, .. } => {
                if lo == 0 && hi == rows.len() {
                    Arc::try_unwrap(rows).unwrap_or_else(|shared| (*shared).clone())
                } else {
                    rows[lo..hi].to_vec()
                }
            }
            Batch::Owned(rows) => rows,
        }
    }
}

/// A blocking operator's fully-gathered input: still zero-copy when the
/// whole input was one shared window (a bare scan). Kernels that only read
/// borrow the slice; kernels that need ownership (sort) unwrap the `Arc`,
/// cloning only when the storage is shared.
pub(super) enum Gathered {
    Shared(Arc<Vec<Row>>),
    Owned(Vec<Row>),
}

impl Gathered {
    /// Collapse buffered batches into one input. A run of contiguous
    /// shared windows that together cover their storage end to end — one
    /// full-table window, or a segmented scan's per-segment windows —
    /// stays zero-copy.
    pub(super) fn from_batches(batches: Vec<Batch>) -> Gathered {
        if let Some(rows) = Self::coalesce_full(&batches) {
            return Gathered::Shared(rows);
        }
        let mut rows = Vec::with_capacity(batches.iter().map(Batch::len).sum());
        for b in batches {
            rows.extend(b.into_rows());
        }
        Gathered::Owned(rows)
    }

    /// `Some(storage)` when `batches` are consecutive windows of one
    /// shared storage covering all of it, in order.
    fn coalesce_full(batches: &[Batch]) -> Option<Arc<Vec<Row>>> {
        let Some(Batch::Shared { rows, .. }) = batches.first() else {
            return None;
        };
        let mut expect = 0;
        for b in batches {
            let Batch::Shared {
                rows: r, lo, hi, ..
            } = b
            else {
                return None;
            };
            if !Arc::ptr_eq(r, rows) || *lo != expect {
                return None;
            }
            expect = *hi;
        }
        (expect == rows.len()).then(|| Arc::clone(rows))
    }

    pub(super) fn as_slice(&self) -> &[Row] {
        match self {
            Gathered::Shared(rows) => rows,
            Gathered::Owned(rows) => rows,
        }
    }

    pub(super) fn into_rows(self) -> Vec<Row> {
        match self {
            Gathered::Shared(rows) => {
                Arc::try_unwrap(rows).unwrap_or_else(|shared| (*shared).clone())
            }
            Gathered::Owned(rows) => rows,
        }
    }
}

// ---------------------------------------------------------------------------
// Column lanes
// ---------------------------------------------------------------------------

/// One column of a batch in typed form. Lanes are either shredded out of
/// the row-major `Value`s (owned `Cow` storage) or borrowed zero-copy
/// from a sealed [`Segment`]'s columnar storage (see [`segment_lanes`]).
/// The typed variants carry a parallel null mask; [`Lane::Rows`] is the
/// fallback lane for columns whose values are not uniformly of the lane
/// type (e.g. INT values stored in a FLOAT column), read back row-major.
pub(super) enum Lane<'a> {
    Int {
        vals: Cow<'a, [i64]>,
        nulls: Cow<'a, [bool]>,
    },
    Float {
        vals: Cow<'a, [f64]>,
        nulls: Cow<'a, [bool]>,
    },
    Bool {
        vals: Cow<'a, [bool]>,
        nulls: Cow<'a, [bool]>,
    },
    Str {
        vals: Vec<&'a str>,
        nulls: Cow<'a, [bool]>,
    },
    Date {
        vals: Cow<'a, [i64]>,
        nulls: Cow<'a, [bool]>,
    },
    /// Dictionary-encoded TEXT straight from segment storage: `codes[i]`
    /// indexes `dict` (null rows masked by `nulls`). Never produced by
    /// [`build_lane`] — only by [`segment_lanes`] — and consumed by the
    /// vectorized kernels' dictionary-aware compare paths.
    Dict {
        codes: &'a [u32],
        nulls: Cow<'a, [bool]>,
        dict: &'a [String],
    },
    /// Mixed-type values borrowed from a segment's row-major fallback
    /// storage. Like [`Lane::Dict`], only [`segment_lanes`] builds this.
    Vals(&'a [Value]),
    /// Mixed/non-conforming storage: fetch `Value`s from the rows.
    Rows,
}

macro_rules! build_lane {
    ($rows:expr, $col:expr, $variant:ident, $pat:pat => $val:expr, $default:expr) => {{
        let mut vals = Vec::with_capacity($rows.len());
        let mut nulls = Vec::with_capacity($rows.len());
        for row in $rows {
            match &row[$col] {
                Value::Null => {
                    vals.push($default);
                    nulls.push(true);
                }
                $pat => {
                    vals.push($val);
                    nulls.push(false);
                }
                _ => return Lane::Rows,
            }
        }
        Lane::$variant {
            vals: vals.into(),
            nulls: nulls.into(),
        }
    }};
}

/// Shred one column into a typed lane, guided by the declared type; any
/// value outside the declared type demotes the column to the row fallback
/// lane (this is how FLOAT columns holding widened INTs stay lossless).
pub(super) fn build_lane(rows: &[Row], col: usize, decl: DataType) -> Lane<'_> {
    match decl {
        DataType::Int => build_lane!(rows, col, Int, Value::Int(i) => *i, 0),
        DataType::Float => build_lane!(rows, col, Float, Value::Float(f) => *f, 0.0),
        DataType::Bool => build_lane!(rows, col, Bool, Value::Bool(b) => *b, false),
        DataType::Text => build_lane!(rows, col, Str, Value::Text(s) => s.as_str(), ""),
        DataType::Date => build_lane!(rows, col, Date, Value::Date(d) => *d, 0),
    }
}

/// Slice one lane per column out of a sealed segment's columnar storage
/// for segment rows `off..off + len` — no shredding: typed storage is
/// borrowed, dictionary codes stay encoded, and only plain-string
/// columns pay an `&str` gather. The window's values are identical to
/// what [`build_lane`] would shred from the matching rows, except that
/// non-conforming columns surface as [`Lane::Vals`] (segment row-major
/// storage) rather than [`Lane::Rows`], and text columns may surface as
/// [`Lane::Dict`].
pub(super) fn segment_lanes(seg: &Segment, off: usize, len: usize) -> Vec<Option<Lane<'_>>> {
    (0..seg.arity())
        .map(|c| {
            let col = seg.column(c);
            let nulls = Cow::Borrowed(&col.nulls[off..off + len]);
            Some(match &col.data {
                ColumnData::Int(v) => Lane::Int {
                    vals: Cow::Borrowed(&v[off..off + len]),
                    nulls,
                },
                ColumnData::Float(v) => Lane::Float {
                    vals: Cow::Borrowed(&v[off..off + len]),
                    nulls,
                },
                ColumnData::Bool(v) => Lane::Bool {
                    vals: Cow::Borrowed(&v[off..off + len]),
                    nulls,
                },
                ColumnData::Date(v) => Lane::Date {
                    vals: Cow::Borrowed(&v[off..off + len]),
                    nulls,
                },
                ColumnData::Str(v) => Lane::Str {
                    vals: v[off..off + len].iter().map(String::as_str).collect(),
                    nulls,
                },
                ColumnData::Dict { codes, dict } => Lane::Dict {
                    codes: &codes[off..off + len],
                    nulls,
                    dict,
                },
                ColumnData::Mixed(v) => Lane::Vals(&v[off..off + len]),
            })
        })
        .collect()
}

/// A batch with lanes built for every column the consuming kernels touch.
pub(super) struct ColumnBatch<'a> {
    pub(super) rows: &'a [Row],
    /// Lane per input column; `None` for columns no kernel references.
    pub(super) lanes: Vec<Option<Lane<'a>>>,
}

impl<'a> ColumnBatch<'a> {
    /// Shred exactly the columns in `cols` (positions into `schema`),
    /// starting from lanes carried over from the producing stage (see
    /// `exec::vector`'s epoch threading; pass an empty seed to shred from
    /// scratch): a seeded column skips the shredding pass entirely. Seeded
    /// lanes describe the *values* (a projection that computed an INT lane
    /// stays an INT lane even if the column is declared FLOAT), which
    /// matches the row path because scalar semantics follow value types.
    pub(super) fn build_seeded(
        rows: &'a [Row],
        schema: &Schema,
        cols: &[usize],
        seed: Vec<Option<Lane<'a>>>,
    ) -> ColumnBatch<'a> {
        let mut lanes = seed;
        lanes.resize_with(schema.arity(), || None);
        for &c in cols {
            if lanes[c].is_none() {
                lanes[c] = Some(build_lane(rows, c, schema.columns()[c].data_type));
            }
        }
        ColumnBatch { rows, lanes }
    }

    pub(super) fn len(&self) -> usize {
        self.rows.len()
    }
}

// ---------------------------------------------------------------------------
// Lane key hashing
// ---------------------------------------------------------------------------

/// Seed for the columnar key hash (an arbitrary odd constant). Also the
/// hash of an *empty* key, which is how global (group-less) aggregation
/// pre-seeds its single group.
pub(super) const HASH_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hasher for bucket maps keyed by lane hashes: [`mix`]'s splitmix64
/// finalizer already diffused the key bits, so the map passes the `u64`
/// through instead of re-hashing it with SipHash. Only sound for keys
/// that went through `mix` — never use this for raw values.
#[derive(Default)]
pub(super) struct PremixedHasher(u64);

impl std::hash::Hasher for PremixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("bucket maps are keyed by pre-mixed u64 hashes");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// `u64 lane hash → V` with pass-through hashing.
pub(super) type HashBuckets<V> =
    std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<PremixedHasher>>;

/// Mix one `(tag, payload)` pair into a running hash (splitmix64-style
/// finalizer). The tags mirror `Value`'s `Hash` impl: 0 NULL, 1 BOOL,
/// 2 numeric (Int *and* Float, payload `f64::to_bits`), 3 TEXT, 4 DATE.
#[inline]
fn mix(h: u64, tag: u8, payload: u64) -> u64 {
    let mut x = h ^ payload
        .wrapping_add(u64::from(tag))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the string bytes, as the TEXT payload.
#[inline]
fn str_payload(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mix one `Value` into a running key hash. The canonical `(tag, payload)`
/// pairs guarantee `a == b` (under `total_cmp`) implies equal hashes:
/// `Int` goes through its `f64` widening exactly like `Value`'s `Hash`.
pub(super) fn value_hash(h: u64, v: &Value) -> u64 {
    match v {
        Value::Null => mix(h, 0, 0),
        Value::Bool(b) => mix(h, 1, u64::from(*b)),
        Value::Int(i) => mix(h, 2, (*i as f64).to_bits()),
        Value::Float(f) => mix(h, 2, f.to_bits()),
        Value::Text(s) => mix(h, 3, str_payload(s)),
        Value::Date(d) => mix(h, 4, *d as u64),
    }
}

/// Per-row key hashes over `idx` columns, computed columnar where lanes
/// permit. Returns `(hashes, has_null)`: NULLs *do* contribute to the hash
/// (grouping treats NULL as an ordinary key value), and `has_null[i]`
/// flags rows whose key contains a NULL so joins can skip them (SQL: NULL
/// never matches).
pub(super) fn key_hashes(rows: &[Row], schema: &Schema, idx: &[usize]) -> (Vec<u64>, Vec<bool>) {
    let n = rows.len();
    let mut hashes = vec![HASH_SEED; n];
    let mut has_null = vec![false; n];
    for &c in idx {
        match build_lane(rows, c, schema.columns()[c].data_type) {
            Lane::Int { vals, nulls } => {
                for i in 0..n {
                    hashes[i] = if nulls[i] {
                        has_null[i] = true;
                        mix(hashes[i], 0, 0)
                    } else {
                        mix(hashes[i], 2, (vals[i] as f64).to_bits())
                    };
                }
            }
            Lane::Float { vals, nulls } => {
                for i in 0..n {
                    hashes[i] = if nulls[i] {
                        has_null[i] = true;
                        mix(hashes[i], 0, 0)
                    } else {
                        mix(hashes[i], 2, vals[i].to_bits())
                    };
                }
            }
            Lane::Bool { vals, nulls } => {
                for i in 0..n {
                    hashes[i] = if nulls[i] {
                        has_null[i] = true;
                        mix(hashes[i], 0, 0)
                    } else {
                        mix(hashes[i], 1, u64::from(vals[i]))
                    };
                }
            }
            Lane::Str { vals, nulls } => {
                for i in 0..n {
                    hashes[i] = if nulls[i] {
                        has_null[i] = true;
                        mix(hashes[i], 0, 0)
                    } else {
                        mix(hashes[i], 3, str_payload(vals[i]))
                    };
                }
            }
            Lane::Date { vals, nulls } => {
                for i in 0..n {
                    hashes[i] = if nulls[i] {
                        has_null[i] = true;
                        mix(hashes[i], 0, 0)
                    } else {
                        mix(hashes[i], 4, vals[i] as u64)
                    };
                }
            }
            // Dict/Vals lanes are segment-only; key hashing shreds its
            // own lanes, so they can only mean the row fallback here.
            Lane::Rows | Lane::Dict { .. } | Lane::Vals(_) => {
                for (i, row) in rows.iter().enumerate() {
                    let v = &row[c];
                    has_null[i] |= v.is_null();
                    hashes[i] = value_hash(hashes[i], v);
                }
            }
        }
    }
    (hashes, has_null)
}

/// Verify a hash-equal key candidate: positional `Value` equality (i.e.
/// `total_cmp`, so `Int(2)` matches `Float(2.0)` and NULL matches NULL —
/// join callers have already excluded NULL keys via `has_null`).
#[inline]
pub(super) fn keys_eq(a: &[Value], a_idx: &[usize], b: &[Value], b_idx: &[usize]) -> bool {
    a_idx.iter().zip(b_idx).all(|(&ai, &bi)| a[ai] == b[bi])
}

// ---------------------------------------------------------------------------
// Lane sort keys
// ---------------------------------------------------------------------------

/// Pre-shredded sort-key columns: compares two row positions with the same
/// lexicographic `Value::total_cmp` order as `algebra::sort_rows`, but
/// against typed lanes (NULLs first; Int lanes compare exactly; Float
/// lanes by `f64::total_cmp`). Non-conforming columns fall back to the
/// row-major compare.
pub(super) struct SortKeys<'a> {
    rows: &'a [Row],
    keys: Vec<(usize, Lane<'a>)>,
}

impl<'a> SortKeys<'a> {
    pub(super) fn build(rows: &'a [Row], schema: &Schema, idxs: &[usize]) -> SortKeys<'a> {
        let keys = idxs
            .iter()
            .map(|&c| (c, build_lane(rows, c, schema.columns()[c].data_type)))
            .collect();
        SortKeys { rows, keys }
    }

    /// Compare rows `a` and `b` by every sort column in order.
    pub(super) fn cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for (c, lane) in &self.keys {
            let o = match lane {
                Lane::Int { vals, nulls } => {
                    cmp_masked(nulls[a], nulls[b], || vals[a].cmp(&vals[b]))
                }
                Lane::Float { vals, nulls } => {
                    cmp_masked(nulls[a], nulls[b], || vals[a].total_cmp(&vals[b]))
                }
                Lane::Bool { vals, nulls } => {
                    cmp_masked(nulls[a], nulls[b], || vals[a].cmp(&vals[b]))
                }
                Lane::Str { vals, nulls } => {
                    cmp_masked(nulls[a], nulls[b], || vals[a].cmp(vals[b]))
                }
                Lane::Date { vals, nulls } => {
                    cmp_masked(nulls[a], nulls[b], || vals[a].cmp(&vals[b]))
                }
                Lane::Rows | Lane::Dict { .. } | Lane::Vals(_) => {
                    self.rows[a][*c].total_cmp(&self.rows[b][*c])
                }
            };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }
}

/// NULLs-first comparison over a null-masked lane pair, matching
/// `Value::total_cmp`'s rank rule (NULL ranks below every value, and
/// `NULL == NULL`).
#[inline]
fn cmp_masked(
    a_null: bool,
    b_null: bool,
    cmp: impl FnOnce() -> std::cmp::Ordering,
) -> std::cmp::Ordering {
    match (a_null, b_null) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => cmp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn mixed_schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::new("i", DataType::Int),
                Column::new("f", DataType::Float),
                Column::new("s", DataType::Text),
                Column::new("b", DataType::Bool),
                Column::new("d", DataType::Date),
            ],
        )
        .unwrap()
    }

    fn mixed_rows() -> Vec<Row> {
        vec![
            vec![
                Value::Int(2),
                Value::Float(2.0),
                Value::text("x"),
                Value::Bool(true),
                Value::Date(10),
            ],
            vec![
                Value::Null,
                Value::Float(-0.0),
                Value::Null,
                Value::Bool(false),
                Value::Null,
            ],
            vec![
                Value::Int(-7),
                Value::Float(f64::NAN),
                Value::text(""),
                Value::Null,
                Value::Date(-3),
            ],
        ]
    }

    #[test]
    fn lane_hashes_match_row_fallback_hashes() {
        let schema = mixed_schema();
        let rows = mixed_rows();
        let idx: Vec<usize> = (0..schema.arity()).collect();
        let (lane_hashes, lane_nulls) = key_hashes(&rows, &schema, &idx);
        for (i, row) in rows.iter().enumerate() {
            let mut h = HASH_SEED;
            let mut any_null = false;
            for &c in &idx {
                h = value_hash(h, &row[c]);
                any_null |= row[c].is_null();
            }
            assert_eq!(lane_hashes[i], h, "row {i}");
            assert_eq!(lane_nulls[i], any_null, "row {i}");
        }
    }

    #[test]
    fn equal_values_hash_equal_across_types() {
        // Int(2) == Float(2.0) under total_cmp, so they must hash equal —
        // including through an INT lane vs a FLOAT lane.
        let h_int = value_hash(HASH_SEED, &Value::Int(2));
        let h_float = value_hash(HASH_SEED, &Value::Float(2.0));
        assert_eq!(h_int, h_float);
        // And a FLOAT column storing a widened INT takes the Rows fallback
        // in key_hashes, which must agree with the typed INT lane.
        let schema = Schema::new("a", vec![Column::new("k", DataType::Float)]).unwrap();
        let rows = vec![vec![Value::Int(2)]];
        let (h, _) = key_hashes(&rows, &schema, &[0]);
        assert_eq!(h[0], h_float);
    }

    #[test]
    fn sort_keys_mirror_total_cmp() {
        let schema = mixed_schema();
        let rows = mixed_rows();
        let idx: Vec<usize> = (0..schema.arity()).collect();
        let keys = SortKeys::build(&rows, &schema, &idx);
        for a in 0..rows.len() {
            for b in 0..rows.len() {
                let want = idx
                    .iter()
                    .map(|&c| rows[a][c].total_cmp(&rows[b][c]))
                    .find(|o| !o.is_eq())
                    .unwrap_or(std::cmp::Ordering::Equal);
                assert_eq!(keys.cmp(a, b), want, "rows {a} vs {b}");
            }
        }
    }

    #[test]
    fn batch_prefix_and_ownership() {
        let rows: Vec<Row> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let arc = Arc::new(rows.clone());
        let b = Batch::shared(Arc::clone(&arc)).take_prefix(3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_full_shared());
        assert_eq!(b.into_rows(), rows[..3].to_vec());
        let g = Gathered::from_batches(vec![Batch::shared(Arc::clone(&arc))]);
        assert!(matches!(g, Gathered::Shared(_)));
        let g = Gathered::from_batches(vec![
            Batch::Owned(rows[..2].to_vec()),
            Batch::shared(arc).take_prefix(1),
        ]);
        assert_eq!(
            g.into_rows(),
            vec![rows[0].clone(), rows[1].clone(), rows[0].clone()]
        );
    }
}
