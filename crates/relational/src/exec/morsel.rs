//! Morsel-driven parallel kernels and the work-stealing scheduler behind
//! the streaming executor's parallel path.
//!
//! # Morsels
//!
//! A *morsel* is a fixed-size contiguous range of input rows
//! ([`MORSEL_SIZE`] by default). Morsel boundaries depend only on the
//! input length and the configured morsel size — **never** on the thread
//! count or on scheduling order — so every run over the same input
//! produces the same morsels. Each kernel here processes morsels
//! independently and merges the per-morsel partial results **strictly in
//! morsel-index order**, which is what makes parallel output byte-identical
//! to serial output:
//!
//! * `par_pipeline` / `par_probe` concatenate per-morsel output rows in
//!   morsel order — exactly the serial row order, because morsels are
//!   contiguous ranges.
//! * `par_build_index` merges morsel-local hash maps in morsel order, so
//!   every key's postings list stays sorted by row position, matching a
//!   serial build.
//! * `par_aggregate` folds per-morsel `GroupedAggState` partials in
//!   morsel order; first-seen group order is preserved for the same
//!   reason, and every accumulator combine is associative (see
//!   `algebra::AggAcc` — FLOAT sums are excluded upstream).
//! * `par_pivot` merges per-morsel wide rows entity-by-entity in morsel
//!   order: first-seen entity slots match the serial kernel, and later
//!   non-null cells overwrite earlier ones just as later rows overwrite in
//!   a serial pass.
//!
//! Fallible kernels keep **error parity** with the serial path: the error
//! from the lowest-index failing morsel wins, and within a morsel rows are
//! processed in order, so the reported error is the one the globally first
//! failing row raises — the same error the serial executor (and the
//! materializing oracle) reports.
//!
//! # Scheduler
//!
//! `run_tasks` is a small work-stealing scheduler over
//! [`std::thread::scope`]. Morsel indices are split into per-worker
//! contiguous ranges, each guarded by a mutex. A worker pops from the
//! front of its own range; when empty it sweeps its peers and steals the
//! back half of the first non-empty range it finds, parking the remainder
//! in its own (empty) queue so other thieves can steal from it in turn.
//! Results land in per-morsel slots, so nothing about scheduling order is
//! observable in the output. The mutexes are uncontended in the common
//! case — a steal happens once per range imbalance, not once per morsel.

use super::blocking::probe_rows;
use super::vector::{self, StageProg};
use super::{apply_stages, ExecConfig, Flow, Stage};
use crate::algebra::{Aggregate, GroupedAggState, JoinKind};
use crate::error::RelResult;
use crate::schema::Schema;
use crate::table::Row;
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Rows per morsel. Matches the executor's batch size so a morsel is one
/// batch worth of work — big enough to amortize scheduling, small enough
/// to rebalance skewed pipelines (a selective filter makes some morsels
/// much cheaper than others).
pub const MORSEL_SIZE: usize = 1024;

/// How many times the work-stealing scheduler has run in this process.
static SCHEDULER_RUNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of work-stealing scheduler invocations.
///
/// Purely diagnostic: tests and benchmarks read it before and after an
/// evaluation to observe whether the parallel path actually ran (e.g. that
/// `GUAVA_EXEC_THREADS=1` or a sub-threshold input stayed serial). Monotone
/// and racy-by-design; compare deltas, not absolute values, and serialize
/// tests that assert on it.
pub fn scheduler_runs() -> u64 {
    SCHEDULER_RUNS.load(Ordering::Relaxed)
}

/// Number of morsels covering `rows` input rows.
pub(super) fn n_morsels(rows: usize, morsel: usize) -> usize {
    rows.div_ceil(morsel.max(1))
}

/// Half-open row range `[lo, hi)` of morsel `i`.
pub(super) fn morsel_bounds(i: usize, rows: usize, morsel: usize) -> (usize, usize) {
    let m = morsel.max(1);
    (i * m, usize::min((i + 1) * m, rows))
}

/// One worker's pending morsel indices: a contiguous half-open range
/// `[next, end)` behind a mutex. The owner pops from the front; thieves
/// take the back half. Ranges only ever shrink or move wholesale, so no
/// index can be claimed twice.
struct WorkerQueue {
    range: Mutex<(usize, usize)>,
}

impl WorkerQueue {
    fn pop_front(&self) -> Option<usize> {
        let mut r = self.range.lock().unwrap();
        if r.0 < r.1 {
            let i = r.0;
            r.0 += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Detach the back half of the pending range (rounded up), for a thief.
    fn steal_back_half(&self) -> Option<(usize, usize)> {
        let mut r = self.range.lock().unwrap();
        let avail = r.1 - r.0;
        if avail == 0 {
            return None;
        }
        let take = avail.div_ceil(2);
        let stolen = (r.1 - take, r.1);
        r.1 -= take;
        Some(stolen)
    }
}

/// Next morsel for worker `w`: own queue first, then steal. A stolen range
/// is parked in the worker's own (necessarily empty) queue so that other
/// thieves can steal from it in turn.
fn next_task(w: usize, queues: &[WorkerQueue]) -> Option<usize> {
    if let Some(i) = queues[w].pop_front() {
        return Some(i);
    }
    for (v, q) in queues.iter().enumerate() {
        if v == w {
            continue;
        }
        if let Some((lo, hi)) = q.steal_back_half() {
            if lo + 1 < hi {
                *queues[w].range.lock().unwrap() = (lo + 1, hi);
            }
            return Some(lo);
        }
    }
    None
}

/// Run `f(0..n_tasks)` on up to `threads` scoped workers with work
/// stealing, returning the results **indexed by task** — scheduling order
/// is unobservable. With one effective worker (or one task) this runs
/// inline on the caller's thread without touching the scheduler.
pub(super) fn run_tasks<T, F>(n_tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n_tasks);
    if threads <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    SCHEDULER_RUNS.fetch_add(1, Ordering::Relaxed);
    let queues: Vec<WorkerQueue> = (0..threads)
        .map(|w| WorkerQueue {
            range: Mutex::new((n_tasks * w / threads, n_tasks * (w + 1) / threads)),
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = next_task(w, queues) {
                    let out = f(i);
                    *slots[i].lock().unwrap() = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panics propagate through scope")
                .expect("scheduler ran every morsel")
        })
        .collect()
}

/// Concatenate per-morsel row results in morsel order; the lowest-index
/// morsel's error wins, which is the globally first failing row.
fn merge_row_results(parts: Vec<RelResult<Vec<Row>>>) -> RelResult<Vec<Row>> {
    let mut out = Vec::new();
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// Run a fused Select/Project stage chain over shared scan storage,
/// morsel-parallel. With compiled columnar `programs` each morsel runs as
/// one batch through the vectorized kernels; otherwise rows stream through
/// `apply_stages` one at a time. Either way, output row order and any
/// error are identical to a serial pass: `vector::run_batch` reports the
/// first failing row *within* its morsel, and the morsel-order merge picks
/// the lowest-index failing morsel.
pub(super) fn par_pipeline(
    rows: &[Row],
    stages: &[Stage<'_>],
    programs: Option<&[StageProg]>,
    cfg: ExecConfig,
) -> RelResult<Vec<Row>> {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        if let Some(progs) = programs {
            return vector::run_batch(stages, progs, &rows[lo..hi]);
        }
        let mut out = Vec::new();
        for row in &rows[lo..hi] {
            if let Some(r) = apply_stages(stages, Flow::Borrowed(row))? {
                out.push(r);
            }
        }
        Ok(out)
    });
    merge_row_results(parts)
}

/// Build a hash-join index from morsel-local maps merged once, in morsel
/// order. Each key's postings list ends up sorted by row position, exactly
/// as a serial build would leave it.
pub(super) fn par_build_index(
    rows: &[Row],
    r_idx: &[usize],
    cfg: ExecConfig,
) -> HashMap<Vec<Value>, Vec<usize>> {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (off, row) in rows[lo..hi].iter().enumerate() {
            let key: Vec<Value> = r_idx.iter().map(|&i| row[i].clone()).collect();
            if !key.iter().any(|v| v.is_null()) {
                map.entry(key).or_default().push(lo + off);
            }
        }
        map
    });
    let mut parts = parts.into_iter();
    let mut index = parts.next().unwrap_or_default();
    for part in parts {
        for (key, mut positions) in part {
            index.entry(key).or_default().append(&mut positions);
        }
    }
    index
}

/// Probe a shared-storage join input against the build index,
/// morsel-parallel. Infallible, like the serial probe; output order
/// matches a serial probe because morsels concatenate in order.
#[allow(clippy::too_many_arguments)]
pub(super) fn par_probe(
    lrows: &[Row],
    index: &HashMap<Vec<Value>, Vec<usize>>,
    right: &[Row],
    l_idx: &[usize],
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
    cfg: ExecConfig,
) -> Vec<Row> {
    let parts = run_tasks(n_morsels(lrows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, lrows.len(), cfg.morsel_size);
        probe_rows(&lrows[lo..hi], index, right, l_idx, kind, l_arity, r_arity)
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Aggregate via per-morsel partial states combined in a final reduce.
/// Only called when every SUM/AVG input is non-FLOAT, so each accumulator
/// combine is associative and the reduce is order-insensitive; group
/// output order is first-seen because partials merge in morsel order over
/// contiguous ranges.
pub(super) fn par_aggregate(
    rows: &[Row],
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[Aggregate],
    cfg: ExecConfig,
) -> Vec<Row> {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        let mut st = GroupedAggState::new(g_idx.is_empty(), aggregates.len());
        for row in &rows[lo..hi] {
            st.update(row, g_idx, agg_idx);
        }
        st
    });
    let mut parts = parts.into_iter();
    let mut st = parts
        .next()
        .unwrap_or_else(|| GroupedAggState::new(g_idx.is_empty(), aggregates.len()));
    for part in parts {
        st.merge(part);
    }
    st.finish(aggregates)
}

/// Pivot EAV rows morsel-parallel: each morsel pivots independently
/// through `kernel` (the row kernel shared with the interpreter, or the
/// lane kernel in vectorized mode — both produce identical wide rows),
/// then partial wide rows merge entity-by-entity in morsel order. A
/// partial's NULL cell means "no write in that morsel", so skipping NULLs
/// while merging reproduces the serial rule that the last written value
/// wins. `klen` is the number of leading entity-key columns in each wide
/// row.
pub(super) fn par_pivot(
    rows: &[Row],
    klen: usize,
    cfg: ExecConfig,
    kernel: impl Fn(&[Row]) -> RelResult<Vec<Row>> + Sync,
) -> RelResult<Vec<Row>> {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        kernel(&rows[lo..hi])
    });
    let mut slots: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut out: Vec<Row> = Vec::new();
    for part in parts {
        for row in part? {
            match slots.entry(row[..klen].to_vec()) {
                Entry::Vacant(e) => {
                    e.insert(out.len());
                    out.push(row);
                }
                Entry::Occupied(e) => {
                    let slot = *e.get();
                    for (i, v) in row.into_iter().enumerate().skip(klen) {
                        if !v.is_null() {
                            out[slot][i] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Validate rows against `schema` morsel-parallel (union NOT NULL
/// re-checks). Each morsel checks its rows in order and the lowest-index
/// failing morsel's error wins, so the reported violation is the one the
/// globally first offending row raises — same as a serial check.
pub(super) fn par_check_rows(rows: &[Row], schema: &Schema, cfg: ExecConfig) -> RelResult<()> {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        rows[lo..hi].iter().try_for_each(|r| schema.check_row(r))
    });
    for part in parts {
        part?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_partition_exactly() {
        for (rows, morsel) in [(0, 4), (1, 4), (4, 4), (5, 4), (4099, 1024)] {
            let n = n_morsels(rows, morsel);
            let mut next = 0;
            for m in 0..n {
                let (lo, hi) = morsel_bounds(m, rows, morsel);
                assert_eq!(lo, next, "gap before morsel {m}");
                assert!(hi > lo, "empty morsel {m}");
                next = hi;
            }
            assert_eq!(next, rows, "morsels must cover all {rows} rows");
        }
    }

    #[test]
    fn run_tasks_results_are_task_indexed() {
        for threads in [1, 2, 3, 8] {
            let out = run_tasks(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        assert_eq!(run_tasks(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn stealing_covers_skewed_queues() {
        // One task is vastly slower than the rest; every index must still
        // appear exactly once regardless of which worker ends up with it.
        let out = run_tasks(64, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_counter_moves_only_when_parallel() {
        let before = scheduler_runs();
        run_tasks(8, 1, |i| i); // serial: inline, no scheduler
        run_tasks(1, 8, |i| i); // one task: inline, no scheduler
        assert_eq!(scheduler_runs(), before);
    }
}
