//! Lane-aware kernels for the blocking operators: hash-join build/probe,
//! grouped aggregation, pivot, and sort.
//!
//! These are the [`ExecMode::Vectorized`](super::ExecMode::Vectorized)
//! counterparts of the row kernels shared with the materializing
//! interpreter (`probe_rows` here, `aggregate_rows` / `pivot_rows` /
//! `sort_rows` in [`crate::algebra`]). Each one consumes typed column
//! lanes ([`super::batch`]) instead of materializing a `Vec<Value>` key or
//! fetching `Value`s per row:
//!
//! * **Join** builds a `u64-hash → build positions` index from
//!   [`key_hashes`] and probes with the same hashes; candidates verify
//!   with [`keys_eq`], so the emitted (probe row × postings) sequence is
//!   identical to the `HashMap<Vec<Value>, _>` index the row kernel uses.
//! * **Aggregation** ([`lane_aggregate`]) groups by lane hash and feeds
//!   INT/FLOAT source columns into [`AggAcc`] through monomorphic
//!   `update_int` / `update_float` calls; every other source type goes
//!   through the generic `update`, so accumulator semantics cannot drift.
//! * **Pivot** ([`pivot_lanes`]) fills its slot map from the key-lane
//!   hashes and reads attribute names off a string lane, falling back to
//!   the row kernel wholesale when the attribute column is not uniformly
//!   text (the fallback reports the exact row-kernel error).
//! * **Sort** ([`sort_gathered`]) sorts an index permutation against
//!   pre-shredded [`SortKeys`]; the parallel path stable-sorts each morsel
//!   run and merges adjacent runs pairwise ("merge path"), with the left
//!   run winning ties — provably equal to a full stable sort, so the
//!   output is byte-identical to `sort_rows` at any morsel size or thread
//!   count.
//!
//! Every kernel here is held to the executor's hard bar: rows, order, and
//! first-error-in-row-order byte-identical to the row path (and thus to
//! the materializing oracle) — see `tests/exec_vectorized.rs` and the
//! 4-lane property suite.

use super::batch::{
    build_lane, key_hashes, keys_eq, Gathered, HashBuckets, Lane, SortKeys, HASH_SEED,
};
use super::morsel::{morsel_bounds, n_morsels, run_tasks};
use super::ExecConfig;
use crate::algebra::{cast_text, pivot_rows, sort_rows, AggAcc, Aggregate, JoinKind};
use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::table::Row;
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Probe one chunk of left rows against a `Vec<Value>`-keyed build index —
/// the row kernel, used by [`ExecMode::Streaming`](super::ExecMode::Streaming)
/// and shared with the morsel-parallel probe.
#[allow(clippy::too_many_arguments)]
pub(super) fn probe_rows(
    lrows: &[Row],
    index: &HashMap<Vec<Value>, Vec<usize>>,
    right: &[Row],
    l_idx: &[usize],
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::with_capacity(lrows.len());
    for lrow in lrows {
        let key: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
        let hit = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            index.get(&key)
        };
        match hit {
            Some(positions) => {
                for &ri in positions {
                    let rrow = &right[ri];
                    let mut row = Vec::with_capacity(l_arity + r_arity);
                    row.extend(lrow.iter().cloned());
                    row.extend(rrow.iter().cloned());
                    out.push(row);
                }
            }
            None if kind == JoinKind::Left => {
                let mut row = Vec::with_capacity(l_arity + r_arity);
                row.extend(lrow.iter().cloned());
                row.extend(std::iter::repeat_n(Value::Null, r_arity));
                out.push(row);
            }
            None => {}
        }
    }
    out
}

/// Serial `Vec<Value>`-keyed index build (the streaming lane's serial
/// path; the parallel variant lives in [`super::morsel::par_build_index`]).
pub(super) fn build_value_index(rows: &[Row], r_idx: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (at, row) in rows.iter().enumerate() {
        let key: Vec<Value> = r_idx.iter().map(|&i| row[i].clone()).collect();
        if !key.iter().any(|v| v.is_null()) {
            index.entry(key).or_default().push(at);
        }
    }
    index
}

/// Lane-hash join index: `u64 key hash → build-side row positions`, in
/// build-row order. NULL keys are absent (SQL: NULL never matches). Hash
/// collisions are resolved at probe time with [`keys_eq`], so the postings
/// a probe row actually joins against are exactly the `Vec<Value>`-keyed
/// index's postings, in the same order.
pub(super) struct HashIndex {
    buckets: HashBuckets<Vec<u32>>,
}

pub(super) fn build_hash_index(rows: &[Row], schema: &Schema, idx: &[usize]) -> HashIndex {
    let (hashes, has_null) = key_hashes(rows, schema, idx);
    let mut buckets: HashBuckets<Vec<u32>> = HashBuckets::default();
    for i in 0..rows.len() {
        if !has_null[i] {
            buckets.entry(hashes[i]).or_default().push(i as u32);
        }
    }
    HashIndex { buckets }
}

/// Morsel-parallel lane-hash index build: morsel-local buckets (with
/// global row positions) merged in morsel order, so every postings list
/// stays sorted by build-row position exactly like a serial build.
pub(super) fn par_build_hash_index(
    rows: &[Row],
    schema: &Schema,
    idx: &[usize],
    cfg: ExecConfig,
) -> HashIndex {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        let (hashes, has_null) = key_hashes(&rows[lo..hi], schema, idx);
        let mut buckets: HashBuckets<Vec<u32>> = HashBuckets::default();
        for off in 0..hi - lo {
            if !has_null[off] {
                buckets
                    .entry(hashes[off])
                    .or_default()
                    .push((lo + off) as u32);
            }
        }
        buckets
    });
    let mut parts = parts.into_iter();
    let mut buckets = parts.next().unwrap_or_default();
    for part in parts {
        for (h, mut positions) in part {
            buckets.entry(h).or_default().append(&mut positions);
        }
    }
    HashIndex { buckets }
}

/// Probe a chunk of left rows against the lane-hash index. Key hashes come
/// off the probe side's lanes; candidate postings are verified with
/// [`keys_eq`] in postings order, so output rows, order, and left-join
/// NULL padding match [`probe_rows`] byte for byte.
#[allow(clippy::too_many_arguments)]
pub(super) fn probe_hash(
    lrows: &[Row],
    lschema: &Schema,
    index: &HashIndex,
    right: &[Row],
    l_idx: &[usize],
    r_idx: &[usize],
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
) -> Vec<Row> {
    let (hashes, has_null) = key_hashes(lrows, lschema, l_idx);
    let mut out: Vec<Row> = Vec::with_capacity(lrows.len());
    for (i, lrow) in lrows.iter().enumerate() {
        let mut matched = false;
        if !has_null[i] {
            if let Some(cands) = index.buckets.get(&hashes[i]) {
                for &ri in cands {
                    let rrow = &right[ri as usize];
                    if keys_eq(lrow, l_idx, rrow, r_idx) {
                        matched = true;
                        let mut row = Vec::with_capacity(l_arity + r_arity);
                        row.extend(lrow.iter().cloned());
                        row.extend(rrow.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut row = Vec::with_capacity(l_arity + r_arity);
            row.extend(lrow.iter().cloned());
            row.extend(std::iter::repeat_n(Value::Null, r_arity));
            out.push(row);
        }
    }
    out
}

/// Morsel-parallel lane-hash probe: per-morsel [`probe_hash`] outputs
/// concatenated in morsel order (the serial row order).
#[allow(clippy::too_many_arguments)]
pub(super) fn par_probe_hash(
    lrows: &[Row],
    lschema: &Schema,
    index: &HashIndex,
    right: &[Row],
    l_idx: &[usize],
    r_idx: &[usize],
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
    cfg: ExecConfig,
) -> Vec<Row> {
    let parts = run_tasks(n_morsels(lrows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, lrows.len(), cfg.morsel_size);
        probe_hash(
            &lrows[lo..hi],
            lschema,
            index,
            right,
            l_idx,
            r_idx,
            kind,
            l_arity,
            r_arity,
        )
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Morsel-parallel [`key_hashes`]: per-morsel hash chunks concatenated in
/// morsel order (hashing is per-row, so the result is position-identical).
pub(super) fn par_key_hashes(
    rows: &[Row],
    schema: &Schema,
    idx: &[usize],
    cfg: ExecConfig,
) -> (Vec<u64>, Vec<bool>) {
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        key_hashes(&rows[lo..hi], schema, idx)
    });
    let mut hashes = Vec::with_capacity(rows.len());
    let mut has_null = Vec::with_capacity(rows.len());
    for (h, n) in parts {
        hashes.extend(h);
        has_null.extend(n);
    }
    (hashes, has_null)
}

// ---------------------------------------------------------------------------
// Lane-aware grouped aggregation
// ---------------------------------------------------------------------------

/// Where one aggregate reads its per-row input from: a typed lane (the
/// vectorized fast path, feeding `AggAcc::update_int` / `update_float`),
/// or the generic row fallback (`AggAcc::update`, so Bool/Text/Date and
/// mixed-storage columns keep identical semantics by construction).
enum AggSrc<'a> {
    CountAll,
    Col(usize),
    Int(std::borrow::Cow<'a, [i64]>, std::borrow::Cow<'a, [bool]>),
    Float(std::borrow::Cow<'a, [f64]>, std::borrow::Cow<'a, [bool]>),
}

struct LaneGroup {
    hash: u64,
    /// First input row of this group: supplies the emitted key values
    /// (the row the serial kernel cloned its key from).
    rep: u32,
    accs: Vec<AggAcc>,
}

/// Grouped aggregation state over lane-hashed keys, mirroring
/// `algebra::GroupedAggState`: groups in first-seen order, a bucket map
/// from key hash to group slots, and per-group accumulators. Partial
/// states over disjoint morsel ranges merge in morsel order.
pub(super) struct LaneAggState<'a> {
    rows: &'a [Row],
    buckets: HashBuckets<Vec<u32>>,
    groups: Vec<LaneGroup>,
    n_aggs: usize,
}

impl<'a> LaneAggState<'a> {
    fn new(rows: &'a [Row], global: bool, n_aggs: usize) -> LaneAggState<'a> {
        let mut st = LaneAggState {
            rows,
            buckets: HashBuckets::default(),
            groups: Vec::new(),
            n_aggs,
        };
        if global {
            // Global aggregation always emits exactly one row, even over
            // zero input rows; the rep index is never read (no key
            // columns), so 0 is safe on an empty input.
            st.buckets.insert(HASH_SEED, vec![0]);
            st.groups.push(LaneGroup {
                hash: HASH_SEED,
                rep: 0,
                accs: vec![AggAcc::default(); n_aggs],
            });
        }
        st
    }

    /// Group slot for the key of input row `rep` (hash `h`), or `None`.
    fn find_group(&self, h: u64, rep: usize, g_idx: &[usize]) -> Option<usize> {
        self.buckets
            .get(&h)?
            .iter()
            .copied()
            .find(|&g| {
                keys_eq(
                    &self.rows[rep],
                    g_idx,
                    &self.rows[self.groups[g as usize].rep as usize],
                    g_idx,
                )
            })
            .map(|g| g as usize)
    }

    fn insert_group(&mut self, h: u64, rep: u32, accs: Vec<AggAcc>) -> usize {
        let g = self.groups.len();
        self.buckets.entry(h).or_default().push(g as u32);
        self.groups.push(LaneGroup { hash: h, rep, accs });
        g
    }

    /// Fold input rows `lo..hi` into the state, columnar: key hashes and
    /// INT/FLOAT aggregate sources come off lanes built once per range;
    /// rows then update their group's accumulators in row order (which is
    /// what keeps the serial FLOAT running sum bit-identical to the row
    /// kernel's).
    fn update_range(
        &mut self,
        lo: usize,
        hi: usize,
        schema: &Schema,
        g_idx: &[usize],
        agg_idx: &[Option<usize>],
    ) {
        let rows = self.rows;
        let slice = &rows[lo..hi];
        let (hashes, _) = key_hashes(slice, schema, g_idx);
        let srcs: Vec<AggSrc<'_>> = agg_idx
            .iter()
            .map(|idx| match idx {
                None => AggSrc::CountAll,
                Some(c) => match build_lane(slice, *c, schema.columns()[*c].data_type) {
                    Lane::Int { vals, nulls } => AggSrc::Int(vals, nulls),
                    Lane::Float { vals, nulls } => AggSrc::Float(vals, nulls),
                    _ => AggSrc::Col(*c),
                },
            })
            .collect();
        for off in 0..slice.len() {
            let i = lo + off;
            let slot = match self.find_group(hashes[off], i, g_idx) {
                Some(g) => g,
                None => {
                    self.insert_group(hashes[off], i as u32, vec![AggAcc::default(); self.n_aggs])
                }
            };
            let accs = &mut self.groups[slot].accs;
            for (src, acc) in srcs.iter().zip(accs.iter_mut()) {
                match src {
                    AggSrc::CountAll => acc.update(None, &rows[i]),
                    AggSrc::Col(c) => acc.update(Some(*c), &rows[i]),
                    AggSrc::Int(vals, nulls) => {
                        if nulls[off] {
                            acc.update_null();
                        } else {
                            acc.update_int(vals[off]);
                        }
                    }
                    AggSrc::Float(vals, nulls) => {
                        if nulls[off] {
                            acc.update_null();
                        } else {
                            acc.update_float(vals[off]);
                        }
                    }
                }
            }
        }
    }

    /// Merge a partial state over a *later* morsel range, walking the
    /// other state's groups in its first-seen order — the same rule as
    /// `GroupedAggState::merge`, so group output order stays first-seen
    /// across the whole input.
    fn merge(&mut self, other: LaneAggState<'a>, g_idx: &[usize]) {
        for g in other.groups {
            match self.find_group(g.hash, g.rep as usize, g_idx) {
                Some(slot) => {
                    let accs = &mut self.groups[slot].accs;
                    for (acc, inc) in accs.iter_mut().zip(g.accs) {
                        acc.merge(inc);
                    }
                }
                None => {
                    self.insert_group(g.hash, g.rep, g.accs);
                }
            }
        }
    }

    /// Emit one row per group in first-seen order: key values cloned from
    /// the group's first input row, then each accumulator's final value.
    fn finish(self, g_idx: &[usize], aggregates: &[Aggregate]) -> Vec<Row> {
        let rows = self.rows;
        self.groups
            .into_iter()
            .map(|g| {
                let mut row: Row = g_idx
                    .iter()
                    .map(|&c| rows[g.rep as usize][c].clone())
                    .collect();
                for (a, acc) in aggregates.iter().zip(g.accs) {
                    row.push(acc.finish(&a.func));
                }
                row
            })
            .collect()
    }
}

/// Serial lane-aware grouped aggregation; byte-identical to
/// `aggregate_rows` (group order, key representation, accumulator
/// semantics — including the order-sensitive FLOAT running sum, which this
/// serial kernel feeds in row order exactly like the row path).
pub(super) fn lane_aggregate(
    rows: &[Row],
    schema: &Schema,
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[Aggregate],
) -> Vec<Row> {
    let mut st = LaneAggState::new(rows, g_idx.is_empty(), aggregates.len());
    st.update_range(0, rows.len(), schema, g_idx, agg_idx);
    st.finish(g_idx, aggregates)
}

/// Morsel-parallel lane-aware aggregation: per-morsel partial states
/// merged in morsel order. Only called when every SUM/AVG input is
/// non-FLOAT (the same associativity gate as `morsel::par_aggregate`).
pub(super) fn par_lane_aggregate(
    rows: &[Row],
    schema: &Schema,
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    aggregates: &[Aggregate],
    cfg: ExecConfig,
) -> Vec<Row> {
    let global = g_idx.is_empty();
    let n_aggs = aggregates.len();
    let parts = run_tasks(n_morsels(rows.len(), cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, rows.len(), cfg.morsel_size);
        let mut st = LaneAggState::new(rows, global, n_aggs);
        st.update_range(lo, hi, schema, g_idx, agg_idx);
        st
    });
    let mut parts = parts.into_iter();
    let mut st = parts
        .next()
        .unwrap_or_else(|| LaneAggState::new(rows, global, n_aggs));
    for part in parts {
        st.merge(part, g_idx);
    }
    st.finish(g_idx, aggregates)
}

// ---------------------------------------------------------------------------
// Lane-aware pivot
// ---------------------------------------------------------------------------

/// Pivot EAV rows with the slot map keyed by lane hashes and attribute
/// names read off a string lane. If the attribute column is not uniformly
/// text the whole kernel falls back to [`pivot_rows`], which reports the
/// row kernel's exact non-text error at the first offending row; a NULL
/// attribute raises the same error here (NULL demotes to the null mask,
/// not to the fallback). Slot creation, silent skipping of unknown
/// attributes, NULL-value skipping, and `cast_text` error order all mirror
/// the row kernel statement for statement.
pub(super) fn pivot_lanes(
    rows: &[Row],
    schema: &Schema,
    key_idx: &[usize],
    attr_idx: usize,
    val_idx: usize,
    attrs: &[(String, DataType)],
) -> RelResult<Vec<Row>> {
    let Lane::Str {
        vals: attr_vals,
        nulls: attr_nulls,
    } = build_lane(rows, attr_idx, DataType::Text)
    else {
        return pivot_rows(rows, key_idx, attr_idx, val_idx, attrs);
    };
    let (hashes, _) = key_hashes(rows, schema, key_idx);
    let klen = key_idx.len();
    // Out rows store the key in positions 0..klen.
    let out_key_idx: Vec<usize> = (0..klen).collect();
    let mut out: Vec<Row> = Vec::new();
    let mut buckets: HashBuckets<Vec<u32>> = HashBuckets::default();
    // EAV inputs cluster one entity's attribute rows together, so remember
    // the previous row's slot and skip the bucket probe for key runs. The
    // cache is verified with the same hash + `keys_eq` test the bucket walk
    // would apply, so slot assignment is unchanged.
    let mut last: Option<(u64, usize)> = None;
    for (i, row) in rows.iter().enumerate() {
        let cached =
            last.filter(|&(h, s)| h == hashes[i] && keys_eq(row, key_idx, &out[s], &out_key_idx));
        let slot = match cached {
            Some((_, s)) => s,
            None => {
                let bucket = buckets.entry(hashes[i]).or_default();
                match bucket
                    .iter()
                    .copied()
                    .find(|&s| keys_eq(row, key_idx, &out[s as usize], &out_key_idx))
                {
                    Some(s) => s as usize,
                    None => {
                        let s = out.len();
                        bucket.push(s as u32);
                        let mut r: Row = Vec::with_capacity(klen + attrs.len());
                        r.extend(key_idx.iter().map(|&c| row[c].clone()));
                        r.extend(std::iter::repeat_n(Value::Null, attrs.len()));
                        out.push(r);
                        s
                    }
                }
            }
        };
        last = Some((hashes[i], slot));
        if attr_nulls[i] {
            return Err(RelError::Eval(format!(
                "pivot attribute column holds non-text value {}",
                Value::Null
            )));
        }
        // Attribute lists are short (one entry per output column), so a
        // linear scan beats hashing the attribute string every row.
        if let Some(pos) = attrs.iter().position(|(name, _)| name == attr_vals[i]) {
            let v = match &row[val_idx] {
                Value::Null => continue,
                Value::Text(t) => cast_text(t, attrs[pos].1)?,
                other => cast_text(&other.to_string(), attrs[pos].1)?,
            };
            out[slot][klen + pos] = v;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Sort: lane keys + parallel merge path
// ---------------------------------------------------------------------------

/// Sort a gathered input. Serial streaming is `sort_rows` unchanged;
/// serial vectorized stable-sorts an index permutation against
/// [`SortKeys`] and applies it with O(n) row moves. The parallel path
/// (both modes) stable-sorts per-morsel index runs and merges adjacent
/// runs pairwise with left-wins-ties — equivalent to one full stable sort,
/// so the output is independent of morsel size and thread count and
/// byte-identical to the serial kernels.
pub(super) fn sort_gathered(
    g: Gathered,
    schema: &Schema,
    idxs: &[usize],
    cfg: ExecConfig,
    vectorized: bool,
) -> Vec<Row> {
    let n = g.as_slice().len();
    if !cfg.parallel_for(n) {
        if !vectorized {
            let mut rows = g.into_rows();
            sort_rows(&mut rows, idxs);
            return rows;
        }
        let rows = g.into_rows();
        let perm = {
            let keys = SortKeys::build(&rows, schema, idxs);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            // Stable sort over ascending initial indices == stable row sort.
            perm.sort_by(|&a, &b| keys.cmp(a as usize, b as usize));
            perm
        };
        return apply_perm(rows, &perm);
    }
    let rows = g.into_rows();
    let perm = if vectorized {
        let keys = SortKeys::build(&rows, schema, idxs);
        par_sort_indices(n, cfg, |a, b| keys.cmp(a, b))
    } else {
        par_sort_indices(n, cfg, |a, b| {
            idxs.iter()
                .map(|&c| rows[a][c].total_cmp(&rows[b][c]))
                .find(|o| !o.is_eq())
                .unwrap_or(Ordering::Equal)
        })
    };
    apply_perm(rows, &perm)
}

/// Reorder `rows` by the permutation with O(n) moves (no row clones).
fn apply_perm(rows: Vec<Row>, perm: &[u32]) -> Vec<Row> {
    let mut src: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    perm.iter()
        .map(|&i| {
            src[i as usize]
                .take()
                .expect("permutation visits each row once")
        })
        .collect()
}

/// Parallel merge-path index sort: stable-sort each morsel's index run,
/// then repeatedly merge adjacent run pairs (an odd trailing run carries
/// over) until one run remains. Runs always cover ascending disjoint
/// position ranges, so left-wins-ties at every merge reproduces global
/// stable-sort order.
fn par_sort_indices(
    n: usize,
    cfg: ExecConfig,
    cmp: impl Fn(usize, usize) -> Ordering + Sync,
) -> Vec<u32> {
    let mut runs: Vec<Vec<u32>> = run_tasks(n_morsels(n, cfg.morsel_size), cfg.threads, |m| {
        let (lo, hi) = morsel_bounds(m, n, cfg.morsel_size);
        let mut run: Vec<u32> = (lo as u32..hi as u32).collect();
        run.sort_by(|&a, &b| cmp(a as usize, b as usize));
        run
    });
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let pairs = runs.len() / 2;
        let mut merged = run_tasks(pairs, cfg.threads, |p| {
            merge_runs(&runs[2 * p], &runs[2 * p + 1], &cmp)
        });
        if runs.len() % 2 == 1 {
            merged.push(runs.pop().expect("odd run checked non-empty"));
        }
        runs = merged;
    }
    runs.pop().expect("one run remains")
}

/// Two-pointer merge of sorted index runs; the left run wins ties (its
/// positions precede the right run's, which is what stability demands).
fn merge_runs<F: Fn(usize, usize) -> Ordering>(a: &[u32], b: &[u32], cmp: &F) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i] as usize, b[j] as usize) != Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{aggregate_rows, AggFunc};
    use crate::schema::Column;

    fn kv_schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Float),
            ],
        )
        .unwrap()
    }

    fn kv_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 3)
                    },
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 / 2.0)
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn hash_index_probe_matches_row_probe() {
        let schema = kv_schema();
        let rows = kv_rows(50);
        let value_index = build_value_index(&rows, &[0]);
        let hash_index = build_hash_index(&rows, &schema, &[0]);
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let want = probe_rows(&rows, &value_index, &rows, &[0], kind, 2, 2);
            let got = probe_hash(&rows, &schema, &hash_index, &rows, &[0], &[0], kind, 2, 2);
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn lane_aggregate_matches_row_aggregate() {
        let schema = kv_schema();
        let rows = kv_rows(60);
        let aggregates = vec![
            Aggregate {
                func: AggFunc::CountAll,
                alias: "n".into(),
            },
            Aggregate {
                func: AggFunc::Sum("v".into()),
                alias: "sv".into(),
            },
            Aggregate {
                func: AggFunc::Min("v".into()),
                alias: "mv".into(),
            },
        ];
        let agg_idx = vec![None, Some(1), Some(1)];
        for g_idx in [vec![0], vec![]] {
            let want = aggregate_rows(&rows, &g_idx, &agg_idx, &aggregates);
            let got = lane_aggregate(&rows, &schema, &g_idx, &agg_idx, &aggregates);
            assert_eq!(got, want, "group by {g_idx:?}");
            let par = par_lane_aggregate(
                &rows,
                &schema,
                &g_idx,
                &agg_idx,
                &aggregates,
                ExecConfig {
                    threads: 3,
                    parallel_threshold: 1,
                    morsel_size: 7,
                    ..ExecConfig::serial()
                },
            );
            assert_eq!(par, want, "parallel, group by {g_idx:?}");
        }
    }

    #[test]
    fn merge_path_sort_is_stable_at_any_morsel_size() {
        let schema = kv_schema();
        let rows = kv_rows(120);
        let mut want = rows.clone();
        sort_rows(&mut want, &[0]);
        for morsel in [1, 7, 64, 1024] {
            let cfg = ExecConfig {
                threads: 4,
                parallel_threshold: 1,
                morsel_size: morsel,
                ..ExecConfig::serial()
            };
            for vectorized in [false, true] {
                let got = sort_gathered(
                    Gathered::Owned(rows.clone()),
                    &schema,
                    &[0],
                    cfg,
                    vectorized,
                );
                assert_eq!(got, want, "morsel {morsel}, vectorized {vectorized}");
            }
        }
    }
}
