//! The push-based physical operator layer: one [`PhysicalOperator`] trait
//! that every operator implements, one [`OpTree`] shape that `compile`
//! produces, and one [`drive`] loop that executes it.
//!
//! # Execution model
//!
//! [`drive`] walks the tree bottom-up: for each node it calls `open`,
//! drives every child in order — pushing each child batch tagged with its
//! input index — and finally calls `finish` to collect the node's output
//! batches. Children are driven *fully, in child order*: input 0 is
//! exhausted before input 1 produces its first batch. For a join that
//! means the build side (input 0, the plan's right child) is always
//! complete before a probe row is read — the same runtime order the
//! pull-based executor had — and for a union it means children concatenate
//! in declaration order.
//!
//! Mode and parallelism selection happen **per operator, per batch**: each
//! operator holds the session [`ExecConfig`] and dispatches to its
//! row-streaming kernel, its lane-aware kernel (`exec::blocking`, in
//! [`ExecMode::Vectorized`]), or the morsel-parallel variant (when the
//! batch is a full shared-storage window that
//! [`ExecConfig::parallel_for`](super::ExecConfig) accepts). Every
//! dispatch target is byte-identical to every other — rows, order, and
//! first-error-in-row-order — so the choice is invisible in the output.
//!
//! # Error ordering
//!
//! Errors surface where the old pull executor surfaced them for
//! single-fault plans: a child's data-dependent error aborts the drive
//! before the parent consumes the failing batch, blocking operators
//! re-raise their kernel's first-row-order error, and `Limit` never cuts
//! a drive short (its child is always fully driven, so an error past the
//! cutoff still surfaces — the materializing interpreter evaluates the
//! full input before truncating). Plans with several independent faults
//! may report a different one of them than a pull-order executor would;
//! the property suites hold all lanes to exact error parity on
//! single-fault plans only, as before.

use super::batch::{key_hashes, keys_eq, segment_lanes, Batch, Gathered, HashBuckets};
use super::blocking::{self, HashIndex};
use super::morsel;
use super::vector::{self, StageProg};
use super::{
    apply_stages, reorderable_prefix, segment_pruned, ExecConfig, ExecMode, Flow, SimplePred,
    Stage, ADAPT_WARMUP, BATCH_SIZE,
};
use crate::algebra::{aggregate_rows, pivot_rows, unpivot_rows, Aggregate, JoinKind};
use crate::error::RelResult;
use crate::schema::Schema;
use crate::segment::Segment;
use crate::table::Row;
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::Arc;

/// A push-based physical operator. The driver calls [`open`], pushes every
/// input batch via [`push_batch`] (tagged with the producing child's
/// index), and collects the output from [`finish`]. Streaming operators
/// accumulate transformed batches as input arrives; blocking operators
/// buffer until `finish` runs their kernel.
///
/// [`open`]: PhysicalOperator::open
/// [`push_batch`]: PhysicalOperator::push_batch
/// [`finish`]: PhysicalOperator::finish
pub(super) trait PhysicalOperator {
    /// One-time setup before any batch arrives (e.g. compiling columnar
    /// stage programs).
    fn open(&mut self) -> RelResult<()> {
        Ok(())
    }

    /// Consume one batch from child `input`.
    fn push_batch(&mut self, input: usize, batch: Batch) -> RelResult<()>;

    /// All inputs are exhausted: emit the output batches.
    fn finish(&mut self) -> RelResult<Vec<Batch>>;
}

/// A compiled physical plan: leaves are zero-copy handles on table
/// storage, nodes are operators over their children's output.
pub(super) enum OpTree<'p> {
    /// A table's `Arc`-shared row storage, emitted as one zero-copy batch.
    Leaf(Arc<Vec<Row>>),
    /// A segment-backed scan (DESIGN.md §14): the table's shared row
    /// storage plus its sealed columnar prefix. Emits one zero-copy batch
    /// per sealed segment — each carrying its [`Segment`] so the pipeline
    /// above slices lanes instead of shredding — then one plain window
    /// for the row-form delta tail past `covered`. `prune` holds the
    /// pushed-down simple filter conjuncts (stage-ordered) that zone maps
    /// test to skip segments before a batch is formed.
    SegmentLeaf {
        rows: Arc<Vec<Row>>,
        segments: Vec<Arc<Segment>>,
        covered: usize,
        prune: Vec<Vec<SimplePred>>,
    },
    Node {
        op: Box<dyn PhysicalOperator + 'p>,
        children: Vec<OpTree<'p>>,
    },
}

/// Execute an operator tree: drive each child fully in order, pushing its
/// batches into the parent, then finish the parent. The recursion is the
/// entire control flow of the executor — operators never pull.
pub(super) fn drive(tree: OpTree<'_>) -> RelResult<Vec<Batch>> {
    match tree {
        OpTree::Leaf(rows) => Ok(vec![Batch::shared(rows)]),
        OpTree::SegmentLeaf {
            rows,
            segments,
            covered,
            prune,
        } => {
            let mut out = Vec::new();
            let mut lo = 0;
            for seg in segments {
                let hi = lo + seg.len();
                if !seg.is_empty() && !segment_pruned(&seg, &prune) {
                    out.push(Batch::shared_window(Arc::clone(&rows), lo, hi, Some(seg)));
                }
                lo = hi;
            }
            debug_assert_eq!(lo, covered);
            if covered < rows.len() {
                let hi = rows.len();
                out.push(Batch::shared_window(rows, covered, hi, None));
            }
            Ok(out)
        }
        OpTree::Node { mut op, children } => {
            op.open()?;
            for (i, child) in children.into_iter().enumerate() {
                for batch in drive(child)? {
                    op.push_batch(i, batch)?;
                }
            }
            op.finish()
        }
    }
}

/// Push `rows` as an owned output batch, dropping empties (operators never
/// emit empty batches, matching the pull executor's contract).
fn push_rows(out: &mut Vec<Batch>, rows: Vec<Row>) {
    if !rows.is_empty() {
        out.push(Batch::Owned(rows));
    }
}

// ---------------------------------------------------------------------------
// Fused Select/Project pipeline
// ---------------------------------------------------------------------------

/// Overall pass rate at or above which an adaptive pipeline running row
/// kernels switches to compiled lane programs: with most rows surviving,
/// short-circuiting buys little and columnar evaluation amortizes.
const ADAPT_LANE_MIN_PASS: f64 = 0.05;

/// Overall pass rate below which an adaptive vectorized pipeline falls
/// back to row kernels for batches whose lanes must be shredded (plain
/// shared windows): when almost nothing survives, per-row short-circuit
/// beats paying full lane materialization. Segment-backed batches keep
/// their zero-shred lanes regardless.
const ADAPT_ROW_MAX_PASS: f64 = 1.0 / 256.0;

/// Warm-up observation state of an adaptive pipeline ([`ExecConfig::adaptive`]).
///
/// While active, rows run the counted row path; once [`ADAPT_WARMUP`]
/// rows have been observed the pipeline decides — at a `BATCH_SIZE`
/// chunk boundary, so segment lane offsets stay aligned — whether to
/// permute its re-orderable filter prefix and/or switch kernels, then
/// dissolves. Pass counters are *conditional* (a stage only sees rows
/// that survived the stages before it under the original order), which is
/// exactly the quantity the greedy cheapest-first reorder wants.
struct AdaptState {
    /// Leading filter stages legal to permute ([`reorderable_prefix`]).
    prefix: usize,
    /// Per prefix stage: (rows seen, rows passed) under the original
    /// short-circuit order.
    counts: Vec<(u64, u64)>,
    /// Total rows observed so far (= `counts[0].0`).
    observed: usize,
}

/// Fused Select/Project chain: one pass per row (or one columnar pass per
/// batch in [`ExecMode::Vectorized`]), no intermediate tables. A full
/// shared-storage window large enough for the parallel path runs the whole
/// chain morsel-parallel instead.
///
/// With [`ExecConfig::adaptive`] set, the pipeline observes real
/// selectivities over a warm-up prefix of its input and may re-order its
/// statically infallible filter tower (cheapest-first by observed pass
/// rate) and/or switch row↔lane kernels mid-query. Every adaptive choice
/// dispatches between kernels that are already byte-identical, and filter
/// permutation is gated on [`reorderable_prefix`]'s legality proof — so
/// output bytes and errors never depend on the knob (DESIGN.md §17).
pub(super) struct PipelineOp<'p> {
    stages: Vec<Stage<'p>>,
    /// Columnar stage programs, compiled once in [`open`] when the mode is
    /// vectorized. Owned batches (child-produced rows the row path can
    /// move rather than clone) stay on `apply_stages` — the fallback rule
    /// of DESIGN.md §11.
    ///
    /// [`open`]: PhysicalOperator::open
    programs: Option<Vec<StageProg>>,
    cfg: ExecConfig,
    /// `Some` while the adaptive warm-up is still observing.
    adapt: Option<AdaptState>,
    /// Adaptive verdict: shred-requiring batches take the row path.
    row_only: bool,
    out: Vec<Batch>,
}

impl<'p> PipelineOp<'p> {
    pub(super) fn new(stages: Vec<Stage<'p>>, cfg: ExecConfig) -> PipelineOp<'p> {
        PipelineOp {
            stages,
            programs: None,
            cfg,
            adapt: None,
            row_only: false,
            out: Vec::new(),
        }
    }

    /// Counted row path used during warm-up: evaluate the re-orderable
    /// filter prefix stage by stage, recording seen/passed per stage, then
    /// hand survivors to the untracked tail. Byte-identical to
    /// [`apply_stages`] over the full stage list.
    fn apply_counted(&mut self, row: Flow<'_>) -> RelResult<Option<Row>> {
        let st = self.adapt.as_mut().expect("warm-up active");
        st.observed += 1;
        for (i, c) in st.counts.iter_mut().enumerate() {
            let Stage::Filter { predicate, schema } = &self.stages[i] else {
                unreachable!("reorderable prefix contains only filters");
            };
            c.0 += 1;
            if !predicate.matches(schema, row.as_slice())? {
                return Ok(None);
            }
            c.1 += 1;
        }
        let prefix = st.prefix;
        apply_stages(&self.stages[prefix..], row)
    }

    /// End of warm-up: permute the re-orderable filter prefix ascending by
    /// observed pass rate (stable — unobserved or tied stages keep their
    /// order) and apply the kernel-switch thresholds. Runs at most once.
    fn decide(&mut self) {
        let Some(st) = self.adapt.take() else { return };
        let seen = st.counts.first().map_or(0, |c| c.0);
        if seen == 0 {
            return;
        }
        let rates: Vec<f64> = st
            .counts
            .iter()
            .map(|&(s, p)| if s == 0 { 1.0 } else { p as f64 / s as f64 })
            .collect();
        let mut order: Vec<usize> = (0..st.prefix).collect();
        order.sort_by(|&a, &b| {
            rates[a]
                .partial_cmp(&rates[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let changed = order.iter().enumerate().any(|(i, &s)| i != s);
        if changed {
            let mut head: Vec<Option<Stage>> = self.stages.drain(..st.prefix).map(Some).collect();
            let reordered = order.iter().map(|&s| head[s].take().expect("permutation"));
            // Collect before splicing: the iterator borrows `head`.
            let reordered: Vec<Stage> = reordered.collect();
            self.stages.splice(0..0, reordered);
        }
        // Fraction of observed rows surviving the whole prefix.
        let overall = st.counts.last().map_or(1.0, |c| c.1 as f64) / seen as f64;
        match &self.programs {
            None => {
                // Row kernels (streaming mode): with most rows surviving,
                // switch to compiled lane programs.
                if overall >= ADAPT_LANE_MIN_PASS {
                    self.programs = Some(vector::compile_stages(&self.stages));
                }
            }
            Some(_) => {
                if changed {
                    self.programs = Some(vector::compile_stages(&self.stages));
                }
                if overall < ADAPT_ROW_MAX_PASS {
                    self.row_only = true;
                }
            }
        }
    }

    /// Warm-up path for one batch: counted row processing in `BATCH_SIZE`
    /// chunks until enough rows were observed, then the decided kernels
    /// for the rest of the batch. Deciding only at chunk boundaries keeps
    /// the remainder `BATCH_SIZE`-aligned, so segment-backed windows keep
    /// slicing their lanes at the correct offsets.
    fn push_adaptive(&mut self, batch: Batch) -> RelResult<()> {
        match batch {
            b @ Batch::Shared { .. } => {
                let seg = b.segment().cloned();
                let slice = b.as_slice();
                let mut off = 0;
                while off < slice.len() && self.adapt.is_some() {
                    let chunk = &slice[off..(off + BATCH_SIZE).min(slice.len())];
                    let mut rows = Vec::with_capacity(chunk.len());
                    for row in chunk {
                        if let Some(r) = self.apply_counted(Flow::Borrowed(row))? {
                            rows.push(r);
                        }
                    }
                    push_rows(&mut self.out, rows);
                    off += chunk.len();
                    if self
                        .adapt
                        .as_ref()
                        .is_some_and(|s| s.observed >= ADAPT_WARMUP)
                    {
                        self.decide();
                    }
                }
                if off >= slice.len() {
                    return Ok(());
                }
                // Remainder under the decided configuration. Morsel and
                // chunk boundaries are relative to the remainder slice;
                // pipeline stages are row-local, so partitioning does not
                // affect output bytes or error order.
                let rest = &slice[off..];
                if (b.is_full_shared() || seg.is_some()) && self.cfg.parallel_for(rest.len()) {
                    let progs = if self.row_only && seg.is_none() {
                        None
                    } else {
                        self.programs.as_deref()
                    };
                    let rows = morsel::par_pipeline(rest, &self.stages, progs, self.cfg)?;
                    push_rows(&mut self.out, rows);
                    return Ok(());
                }
                for (k, chunk) in rest.chunks(BATCH_SIZE).enumerate() {
                    let rows = match (&self.programs, &seg) {
                        (Some(progs), Some(seg)) => {
                            let seed = segment_lanes(seg, off + k * BATCH_SIZE, chunk.len());
                            vector::run_batch_seeded(&self.stages, progs, chunk, seed)?
                        }
                        (Some(progs), None) if !self.row_only => {
                            vector::run_batch(&self.stages, progs, chunk)?
                        }
                        _ => {
                            let mut rows = Vec::with_capacity(chunk.len());
                            for row in chunk {
                                if let Some(r) = apply_stages(&self.stages, Flow::Borrowed(row))? {
                                    rows.push(r);
                                }
                            }
                            rows
                        }
                    };
                    push_rows(&mut self.out, rows);
                }
                Ok(())
            }
            Batch::Owned(batch_rows) => {
                // Owned batches run row-wise either way; just thread them
                // through the counters until warm-up completes.
                let mut rows = Vec::with_capacity(batch_rows.len());
                let mut since_decide_check = 0usize;
                for row in batch_rows {
                    let kept = if self.adapt.is_some() {
                        since_decide_check += 1;
                        let r = self.apply_counted(Flow::Owned(row))?;
                        if since_decide_check >= BATCH_SIZE {
                            since_decide_check = 0;
                            if self
                                .adapt
                                .as_ref()
                                .is_some_and(|s| s.observed >= ADAPT_WARMUP)
                            {
                                self.decide();
                            }
                        }
                        r
                    } else {
                        apply_stages(&self.stages, Flow::Owned(row))?
                    };
                    if let Some(r) = kept {
                        rows.push(r);
                    }
                }
                if self
                    .adapt
                    .as_ref()
                    .is_some_and(|s| s.observed >= ADAPT_WARMUP)
                {
                    self.decide();
                }
                push_rows(&mut self.out, rows);
                Ok(())
            }
        }
    }
}

impl PhysicalOperator for PipelineOp<'_> {
    fn open(&mut self) -> RelResult<()> {
        if self.cfg.mode == ExecMode::Vectorized && !self.stages.is_empty() {
            self.programs = Some(vector::compile_stages(&self.stages));
        }
        if self.cfg.adaptive {
            let prefix = reorderable_prefix(&self.stages);
            if prefix >= 1 {
                self.adapt = Some(AdaptState {
                    prefix,
                    counts: vec![(0, 0); prefix],
                    observed: 0,
                });
            }
        }
        Ok(())
    }

    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        if self.stages.is_empty() {
            self.out.push(batch);
            return Ok(());
        }
        if self.adapt.is_some() {
            return self.push_adaptive(batch);
        }
        // Whole-table windows and per-segment windows both partition
        // deterministically (morsel bounds are relative to the window, so
        // output and error order match the serial run batch for batch).
        if (batch.is_full_shared() || batch.segment().is_some())
            && self.cfg.parallel_for(batch.len())
        {
            let progs = if self.row_only && batch.segment().is_none() {
                None
            } else {
                self.programs.as_deref()
            };
            let rows = morsel::par_pipeline(batch.as_slice(), &self.stages, progs, self.cfg)?;
            push_rows(&mut self.out, rows);
            return Ok(());
        }
        match batch {
            b @ Batch::Shared { .. } => {
                // Serial shared window: process in BATCH_SIZE chunks so the
                // pipeline's working set stays cache-sized, columnar when
                // programs are compiled. Segment-backed windows seed each
                // chunk's lanes straight from columnar storage — the
                // zero-shred path (the live window always starts at
                // segment row 0, so the chunk offset is the segment
                // offset).
                let seg = b.segment().cloned();
                for (k, chunk) in b.as_slice().chunks(BATCH_SIZE).enumerate() {
                    let rows = match (&self.programs, &seg) {
                        (Some(progs), Some(seg)) => {
                            let seed = segment_lanes(seg, k * BATCH_SIZE, chunk.len());
                            vector::run_batch_seeded(&self.stages, progs, chunk, seed)?
                        }
                        (Some(progs), None) if !self.row_only => {
                            vector::run_batch(&self.stages, progs, chunk)?
                        }
                        _ => {
                            let mut rows = Vec::with_capacity(chunk.len());
                            for row in chunk {
                                if let Some(r) = apply_stages(&self.stages, Flow::Borrowed(row))? {
                                    rows.push(r);
                                }
                            }
                            rows
                        }
                    };
                    push_rows(&mut self.out, rows);
                }
            }
            Batch::Owned(batch_rows) => {
                let mut rows = Vec::with_capacity(batch_rows.len());
                for row in batch_rows {
                    if let Some(r) = apply_stages(&self.stages, Flow::Owned(row))? {
                        rows.push(r);
                    }
                }
                push_rows(&mut self.out, rows);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        Ok(mem::take(&mut self.out))
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// The gathered build side plus its key index. In vectorized mode the
/// index is lane-hashed (`u64` key hash → positions, candidates verified
/// with [`keys_eq`] at probe time); in streaming mode it is the
/// `Vec<Value>`-keyed map the row kernels use. Both index shapes yield the
/// same postings in the same order for every probe row.
struct BuildSide {
    rows: Gathered,
    index: JoinIndex,
}

enum JoinIndex {
    Lanes(HashIndex),
    Values(HashMap<Vec<Value>, Vec<usize>>),
}

/// Hash join. Input 0 is the **build** side (the plan's right child — the
/// driver exhausts it before the probe child starts); input 1 probes. The
/// index is built once, when the first probe batch arrives; both phases
/// parallelize over full shared-storage windows.
pub(super) struct JoinOp {
    lschema: Schema,
    rschema: Schema,
    l_idx: Vec<usize>,
    r_idx: Vec<usize>,
    kind: JoinKind,
    l_arity: usize,
    r_arity: usize,
    cfg: ExecConfig,
    build_buf: Vec<Batch>,
    build: Option<BuildSide>,
    out: Vec<Batch>,
}

impl JoinOp {
    pub(super) fn new(
        lschema: Schema,
        rschema: Schema,
        l_idx: Vec<usize>,
        r_idx: Vec<usize>,
        kind: JoinKind,
        cfg: ExecConfig,
    ) -> JoinOp {
        JoinOp {
            l_arity: lschema.arity(),
            r_arity: rschema.arity(),
            lschema,
            rschema,
            l_idx,
            r_idx,
            kind,
            cfg,
            build_buf: Vec::new(),
            build: None,
            out: Vec::new(),
        }
    }

    fn ensure_build(&mut self) {
        if self.build.is_some() {
            return;
        }
        let rows = Gathered::from_batches(mem::take(&mut self.build_buf));
        let slice = rows.as_slice();
        let par = self.cfg.parallel_for(slice.len());
        let index = if self.cfg.mode == ExecMode::Vectorized {
            JoinIndex::Lanes(if par {
                blocking::par_build_hash_index(slice, &self.rschema, &self.r_idx, self.cfg)
            } else {
                blocking::build_hash_index(slice, &self.rschema, &self.r_idx)
            })
        } else {
            JoinIndex::Values(if par {
                morsel::par_build_index(slice, &self.r_idx, self.cfg)
            } else {
                blocking::build_value_index(slice, &self.r_idx)
            })
        };
        self.build = Some(BuildSide { rows, index });
    }
}

impl PhysicalOperator for JoinOp {
    fn push_batch(&mut self, input: usize, batch: Batch) -> RelResult<()> {
        if input == 0 {
            self.build_buf.push(batch);
            return Ok(());
        }
        self.ensure_build();
        let build = self.build.as_ref().expect("build side indexed above");
        let lrows = batch.as_slice();
        let right = build.rows.as_slice();
        let par = batch.is_full_shared() && self.cfg.parallel_for(batch.len());
        let rows = match &build.index {
            JoinIndex::Lanes(index) => {
                if par {
                    blocking::par_probe_hash(
                        lrows,
                        &self.lschema,
                        index,
                        right,
                        &self.l_idx,
                        &self.r_idx,
                        self.kind,
                        self.l_arity,
                        self.r_arity,
                        self.cfg,
                    )
                } else {
                    blocking::probe_hash(
                        lrows,
                        &self.lschema,
                        index,
                        right,
                        &self.l_idx,
                        &self.r_idx,
                        self.kind,
                        self.l_arity,
                        self.r_arity,
                    )
                }
            }
            JoinIndex::Values(index) => {
                if par {
                    morsel::par_probe(
                        lrows,
                        index,
                        right,
                        &self.l_idx,
                        self.kind,
                        self.l_arity,
                        self.r_arity,
                        self.cfg,
                    )
                } else {
                    blocking::probe_rows(
                        lrows,
                        index,
                        right,
                        &self.l_idx,
                        self.kind,
                        self.l_arity,
                        self.r_arity,
                    )
                }
            }
        };
        push_rows(&mut self.out, rows);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        Ok(mem::take(&mut self.out))
    }
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

/// Bag union: batches pass straight through in child order. Rows from
/// non-leading inputs are re-checked against the output schema only when
/// some column is NOT NULL — the one way union rows can be rejected, since
/// union compatibility already fixed the types — morsel-parallel for large
/// shared windows.
pub(super) struct UnionOp {
    schema: Schema,
    check_rows: bool,
    cfg: ExecConfig,
    out: Vec<Batch>,
}

impl UnionOp {
    pub(super) fn new(schema: Schema, check_rows: bool, cfg: ExecConfig) -> UnionOp {
        UnionOp {
            schema,
            check_rows,
            cfg,
            out: Vec::new(),
        }
    }
}

impl PhysicalOperator for UnionOp {
    fn push_batch(&mut self, input: usize, batch: Batch) -> RelResult<()> {
        if self.check_rows && input > 0 {
            let rows = batch.as_slice();
            if self.cfg.parallel_for(rows.len()) {
                morsel::par_check_rows(rows, &self.schema, self.cfg)?;
            } else {
                for row in rows {
                    self.schema.check_row(row)?;
                }
            }
        }
        self.out.push(batch);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        Ok(mem::take(&mut self.out))
    }
}

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

/// δ dedup state: the streaming lane keeps the classic seen-set; the
/// vectorized lane buckets first occurrences by lane key hash and verifies
/// candidates with [`keys_eq`] — same equality relation (`Value` equality
/// is `total_cmp`-consistent, and so is the lane hash), so both emit the
/// identical first-occurrence sequence.
enum DistinctState {
    Rowwise { seen: HashSet<Row> },
    Lanes { buckets: HashBuckets<Vec<u32>> },
}

/// Streaming δ: forwards first occurrences across all input batches.
pub(super) struct DistinctOp {
    schema: Schema,
    /// All column positions — distinct keys on the whole row.
    cols: Vec<usize>,
    cfg: ExecConfig,
    state: DistinctState,
    kept: Vec<Row>,
}

impl DistinctOp {
    pub(super) fn new(schema: Schema, cfg: ExecConfig) -> DistinctOp {
        let state = if cfg.mode == ExecMode::Vectorized {
            DistinctState::Lanes {
                buckets: HashBuckets::default(),
            }
        } else {
            DistinctState::Rowwise {
                seen: HashSet::new(),
            }
        };
        DistinctOp {
            cols: (0..schema.arity()).collect(),
            schema,
            cfg,
            state,
            kept: Vec::new(),
        }
    }
}

impl PhysicalOperator for DistinctOp {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        match &mut self.state {
            DistinctState::Rowwise { seen } => {
                for row in batch.into_rows() {
                    if seen.insert(row.clone()) {
                        self.kept.push(row);
                    }
                }
            }
            DistinctState::Lanes { buckets } => {
                let rows = batch.as_slice();
                // The hash pass is columnar (and morsel-parallel for large
                // shared windows); the bucket walk stays serial to keep
                // first-occurrence order.
                let (hashes, _) = if self.cfg.parallel_for(rows.len()) {
                    blocking::par_key_hashes(rows, &self.schema, &self.cols, self.cfg)
                } else {
                    key_hashes(rows, &self.schema, &self.cols)
                };
                for (i, row) in rows.iter().enumerate() {
                    let bucket = buckets.entry(hashes[i]).or_default();
                    let dup = bucket
                        .iter()
                        .any(|&s| keys_eq(row, &self.cols, &self.kept[s as usize], &self.cols));
                    if !dup {
                        bucket.push(self.kept.len() as u32);
                        self.kept.push(row.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        let mut out = Vec::new();
        push_rows(&mut out, mem::take(&mut self.kept));
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Unpivot
// ---------------------------------------------------------------------------

/// Streaming un-pivot: each input batch expands independently into EAV
/// triples, read in place when the input is a shared window.
pub(super) struct UnpivotOp {
    in_schema: Schema,
    key_idx: Vec<usize>,
    data_idx: Vec<usize>,
    out: Vec<Batch>,
}

impl UnpivotOp {
    pub(super) fn new(in_schema: Schema, key_idx: Vec<usize>, data_idx: Vec<usize>) -> UnpivotOp {
        UnpivotOp {
            in_schema,
            key_idx,
            data_idx,
            out: Vec::new(),
        }
    }
}

impl PhysicalOperator for UnpivotOp {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        let rows = unpivot_rows(
            &self.in_schema,
            batch.as_slice(),
            &self.key_idx,
            &self.data_idx,
        );
        push_rows(&mut self.out, rows);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        Ok(mem::take(&mut self.out))
    }
}

// ---------------------------------------------------------------------------
// Blocking operators: aggregate, pivot, sort
// ---------------------------------------------------------------------------

/// Grouped aggregation: buffers its input, then dispatches on
/// (mode, associativity × cardinality) to the lane kernel, the row kernel,
/// or their morsel-parallel variants. SUM/AVG over FLOAT pins a serial
/// kernel in either mode — `f64` addition is not associative, and both
/// serial kernels add in row order, so results stay bit-identical.
pub(super) struct AggregateOp<'p> {
    in_schema: Schema,
    out_schema: Schema,
    g_idx: Vec<usize>,
    agg_idx: Vec<Option<usize>>,
    aggregates: &'p [Aggregate],
    associative: bool,
    cfg: ExecConfig,
    buf: Vec<Batch>,
}

impl<'p> AggregateOp<'p> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        in_schema: Schema,
        out_schema: Schema,
        g_idx: Vec<usize>,
        agg_idx: Vec<Option<usize>>,
        aggregates: &'p [Aggregate],
        associative: bool,
        cfg: ExecConfig,
    ) -> AggregateOp<'p> {
        AggregateOp {
            in_schema,
            out_schema,
            g_idx,
            agg_idx,
            aggregates,
            associative,
            cfg,
            buf: Vec::new(),
        }
    }
}

impl PhysicalOperator for AggregateOp<'_> {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        self.buf.push(batch);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        let g = Gathered::from_batches(mem::take(&mut self.buf));
        let rows = g.as_slice();
        let par = self.associative && self.cfg.parallel_for(rows.len());
        let out = match (self.cfg.mode == ExecMode::Vectorized, par) {
            (true, true) => blocking::par_lane_aggregate(
                rows,
                &self.in_schema,
                &self.g_idx,
                &self.agg_idx,
                self.aggregates,
                self.cfg,
            ),
            (true, false) => blocking::lane_aggregate(
                rows,
                &self.in_schema,
                &self.g_idx,
                &self.agg_idx,
                self.aggregates,
            ),
            (false, true) => {
                morsel::par_aggregate(rows, &self.g_idx, &self.agg_idx, self.aggregates, self.cfg)
            }
            (false, false) => aggregate_rows(rows, &self.g_idx, &self.agg_idx, self.aggregates),
        };
        // Validate emitted rows exactly where the materializing
        // interpreter's `from_rows` does — e.g. SUM over a TEXT column
        // emits INT into a TEXT-typed output column.
        for r in &out {
            self.out_schema.check_row(r)?;
        }
        let mut batches = Vec::new();
        push_rows(&mut batches, out);
        Ok(batches)
    }
}

/// Pivot: buffers its input, then runs the lane kernel
/// ([`blocking::pivot_lanes`]) or the row kernel shared with the
/// interpreter — per morsel when the input is large, with wide rows merged
/// entity-by-entity in morsel order.
pub(super) struct PivotOp<'p> {
    in_schema: Schema,
    key_idx: Vec<usize>,
    attr_idx: usize,
    val_idx: usize,
    attrs: &'p [(String, DataType)],
    cfg: ExecConfig,
    buf: Vec<Batch>,
}

impl<'p> PivotOp<'p> {
    pub(super) fn new(
        in_schema: Schema,
        key_idx: Vec<usize>,
        attr_idx: usize,
        val_idx: usize,
        attrs: &'p [(String, DataType)],
        cfg: ExecConfig,
    ) -> PivotOp<'p> {
        PivotOp {
            in_schema,
            key_idx,
            attr_idx,
            val_idx,
            attrs,
            cfg,
            buf: Vec::new(),
        }
    }
}

impl PhysicalOperator for PivotOp<'_> {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        self.buf.push(batch);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        let g = Gathered::from_batches(mem::take(&mut self.buf));
        let rows = g.as_slice();
        let kernel = |slice: &[Row]| {
            if self.cfg.mode == ExecMode::Vectorized {
                blocking::pivot_lanes(
                    slice,
                    &self.in_schema,
                    &self.key_idx,
                    self.attr_idx,
                    self.val_idx,
                    self.attrs,
                )
            } else {
                pivot_rows(
                    slice,
                    &self.key_idx,
                    self.attr_idx,
                    self.val_idx,
                    self.attrs,
                )
            }
        };
        let out = if self.cfg.parallel_for(rows.len()) {
            morsel::par_pivot(rows, self.key_idx.len(), self.cfg, kernel)?
        } else {
            kernel(rows)?
        };
        let mut batches = Vec::new();
        push_rows(&mut batches, out);
        Ok(batches)
    }
}

/// Sort: buffers its input, then sorts via [`blocking::sort_gathered`] —
/// lane sort keys in vectorized mode, `sort_rows` in streaming mode, and
/// the parallel merge-path kernel over sorted morsel runs for large inputs
/// in either mode.
pub(super) struct SortOp {
    schema: Schema,
    idxs: Vec<usize>,
    cfg: ExecConfig,
    buf: Vec<Batch>,
}

impl SortOp {
    pub(super) fn new(schema: Schema, idxs: Vec<usize>, cfg: ExecConfig) -> SortOp {
        SortOp {
            schema,
            idxs,
            cfg,
            buf: Vec::new(),
        }
    }
}

impl PhysicalOperator for SortOp {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        self.buf.push(batch);
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        let g = Gathered::from_batches(mem::take(&mut self.buf));
        let rows = blocking::sort_gathered(
            g,
            &self.schema,
            &self.idxs,
            self.cfg,
            self.cfg.mode == ExecMode::Vectorized,
        );
        let mut batches = Vec::new();
        push_rows(&mut batches, rows);
        Ok(batches)
    }
}

// ---------------------------------------------------------------------------
// Limit
// ---------------------------------------------------------------------------

/// Emits at most `n` rows. The driver still pushes every input batch —
/// the child is always fully driven — so an error past the cutoff
/// surfaces exactly as the materializing interpreter reports it; batches
/// past the cutoff are simply dropped here.
pub(super) struct LimitOp {
    remaining: usize,
    out: Vec<Batch>,
}

impl LimitOp {
    pub(super) fn new(n: usize) -> LimitOp {
        LimitOp {
            remaining: n,
            out: Vec::new(),
        }
    }
}

impl PhysicalOperator for LimitOp {
    fn push_batch(&mut self, _input: usize, batch: Batch) -> RelResult<()> {
        if self.remaining == 0 || batch.len() == 0 {
            return Ok(());
        }
        let take = usize::min(self.remaining, batch.len());
        self.remaining -= take;
        self.out.push(batch.take_prefix(take));
        Ok(())
    }

    fn finish(&mut self) -> RelResult<Vec<Batch>> {
        Ok(mem::take(&mut self.out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    #[test]
    fn drive_emits_leaves_zero_copy() {
        let rows = Arc::new(int_rows(4));
        let batches = drive(OpTree::Leaf(Arc::clone(&rows))).unwrap();
        assert_eq!(batches.len(), 1);
        assert!(batches[0].is_full_shared());
        assert_eq!(batches[0].as_slice(), rows.as_slice());
    }

    #[test]
    fn limit_truncates_across_batches_without_cutting_the_drive() {
        let mut op = LimitOp::new(3);
        op.push_batch(0, Batch::Owned(int_rows(2))).unwrap();
        op.push_batch(0, Batch::Owned(int_rows(2))).unwrap();
        // Past the cutoff: still pushed (the driver always drains the
        // child), silently dropped here.
        op.push_batch(0, Batch::Owned(int_rows(5))).unwrap();
        let out = op.finish().unwrap();
        let rows: Vec<Row> = out.into_iter().flat_map(Batch::into_rows).collect();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(0)]
            ]
        );
    }
}
