//! Scalar expressions over rows: the building blocks of selections and
//! projections, and the evaluation target of the MultiClass classifier
//! language (each classifier rule compiles into a pair of these).

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators. Comparison and logic follow SQL three-valued semantics:
/// a NULL operand yields NULL, which a selection treats as "not satisfied".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column of the input schema, by name.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation (three-valued: NOT NULL = NULL).
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL` — what the classifier language spells `IS ANSWERED`.
    IsNotNull(Box<Expr>),
    /// `expr IN (v1, v2, ...)` over literal values.
    InList(Box<Expr>, Vec<Value>),
    /// `COALESCE(e1, e2, ...)`: first non-null argument.
    Coalesce(Vec<Expr>),
    /// Searched CASE: first arm whose condition is true; else the default.
    Case {
        arms: Vec<(Expr, Expr)>,
        default: Box<Expr>,
    },
}

#[allow(clippy::should_implement_trait)] // SQL-style builder DSL: add/sub/mul/div/not are deliberate
impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }

    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// All column names referenced by this expression, in first-seen order.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_columns(&mut |c| {
            if !out.contains(&c) {
                out.push(c);
            }
        });
        out
    }

    fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Col(c) => f(c),
            Expr::Lit(_) => {}
            Expr::Bin(_, a, b) => {
                a.walk_columns(f);
                b.walk_columns(f);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.walk_columns(f),
            Expr::InList(e, _) => e.walk_columns(f),
            Expr::Coalesce(es) => es.iter().for_each(|e| e.walk_columns(f)),
            Expr::Case { arms, default } => {
                for (c, v) in arms {
                    c.walk_columns(f);
                    v.walk_columns(f);
                }
                default.walk_columns(f);
            }
        }
    }

    /// Rewrite every column reference through `map` (used when plan rewrites
    /// rename naïve-schema columns into physical ones).
    pub fn map_columns(&self, map: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(map(c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.map_columns(map)),
                Box::new(b.map_columns(map)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_columns(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.map_columns(map))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.map_columns(map))),
            Expr::InList(e, vs) => Expr::InList(Box::new(e.map_columns(map)), vs.clone()),
            Expr::Coalesce(es) => Expr::Coalesce(es.iter().map(|e| e.map_columns(map)).collect()),
            Expr::Case { arms, default } => Expr::Case {
                arms: arms
                    .iter()
                    .map(|(c, v)| (c.map_columns(map), v.map_columns(map)))
                    .collect(),
                default: Box::new(default.map_columns(map)),
            },
        }
    }

    /// Evaluate against a row of the given schema.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> RelResult<Value> {
        match self {
            Expr::Col(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| RelError::UnknownColumn {
                        table: schema.name.clone(),
                        column: name.clone(),
                    })?;
                Ok(row[idx].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, a, b) => {
                let l = a.eval(schema, row)?;
                // Short-circuit three-valued AND/OR so the other operand's
                // errors (e.g. unknown columns in dead branches) still
                // surface but FALSE AND NULL = FALSE per SQL.
                match op {
                    BinOp::And | BinOp::Or => {
                        let r = b.eval(schema, row)?;
                        return eval_logic(*op, &l, &r);
                    }
                    _ => {}
                }
                let r = b.eval(schema, row)?;
                eval_bin(*op, &l, &r)
            }
            Expr::Not(e) => match e.eval(schema, row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                v => Err(RelError::Eval(format!("NOT applied to non-boolean {v}"))),
            },
            Expr::Neg(e) => match e.eval(schema, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(RelError::Eval(format!("unary - applied to {v}"))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(schema, row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval(schema, row)?.is_null())),
            Expr::InList(e, vs) => {
                let v = e.eval(schema, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(vs.iter().any(|w| v.sql_eq(w) == Some(true))))
            }
            Expr::Coalesce(es) => {
                for e in es {
                    let v = e.eval(schema, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            Expr::Case { arms, default } => {
                for (cond, out) in arms {
                    if cond.eval(schema, row)? == Value::Bool(true) {
                        return out.eval(schema, row);
                    }
                }
                default.eval(schema, row)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as "not satisfied" (SQL WHERE).
    pub fn matches(&self, schema: &Schema, row: &[Value]) -> RelResult<bool> {
        match self.eval(schema, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(RelError::Eval(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }

    /// Static result type against a schema, used to build projected schemas.
    /// Conservative: arithmetic over two Ints is Int, any Float makes Float.
    /// Expressions that can only produce NULL fall back to Text.
    pub fn infer_type(&self, schema: &Schema) -> RelResult<DataType> {
        Ok(self.infer_type_opt(schema)?.unwrap_or(DataType::Text))
    }

    /// Like [`Expr::infer_type`] but `None` for expressions whose type is
    /// undetermined (bare NULL literals). CASE/COALESCE take the first
    /// branch with a determined type, so `CASE WHEN p THEN NULL ELSE col
    /// END` correctly types as `col`'s type.
    fn infer_type_opt(&self, schema: &Schema) -> RelResult<Option<DataType>> {
        Ok(match self {
            Expr::Col(name) => Some(schema.column(name)?.data_type),
            Expr::Lit(v) => v.data_type(),
            Expr::Bin(op, a, b) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let (ta, tb) = (a.infer_type_opt(schema)?, b.infer_type_opt(schema)?);
                    match (ta, tb) {
                        (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                        _ => Some(DataType::Float),
                    }
                }
                BinOp::Div => Some(DataType::Float),
                _ => Some(DataType::Bool),
            },
            Expr::Not(_) | Expr::IsNull(_) | Expr::IsNotNull(_) | Expr::InList(..) => {
                Some(DataType::Bool)
            }
            Expr::Neg(e) => e.infer_type_opt(schema)?,
            Expr::Coalesce(es) => {
                let mut ty = None;
                for e in es {
                    ty = unify_types(ty, e.infer_type_opt(schema)?);
                }
                ty
            }
            Expr::Case { arms, default } => {
                let mut ty = None;
                for (_, v) in arms {
                    ty = unify_types(ty, v.infer_type_opt(schema)?);
                }
                unify_types(ty, default.infer_type_opt(schema)?)
            }
        })
    }
}

/// Unify branch types of CASE/COALESCE: identical types keep theirs,
/// Int/Float widens to Float (Float columns accept Int values), NULL-only
/// branches are transparent, anything else falls back to Text.
fn unify_types(a: Option<DataType>, b: Option<DataType>) -> Option<DataType> {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(x), Some(y)) if x == y => Some(x),
        (Some(DataType::Int), Some(DataType::Float))
        | (Some(DataType::Float), Some(DataType::Int)) => Some(DataType::Float),
        _ => Some(DataType::Text),
    }
}

/// Three-valued AND/OR over two already-evaluated operands. Shared with the
/// vectorized kernels (`exec::vector`) so the column loops' fallback path is
/// the row semantics by construction.
pub(crate) fn eval_logic(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    let (a, b) = (l.as_bool(), r.as_bool());
    if (!l.is_null() && a.is_none()) || (!r.is_null() && b.is_none()) {
        return Err(RelError::Eval(format!(
            "{} applied to non-boolean",
            op.symbol()
        )));
    }
    Ok(match op {
        BinOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!(),
    })
}

/// Evaluate one binary operator over two already-evaluated operands. This
/// single function defines the scalar semantics (null propagation, wrapping
/// integer arithmetic, Int/Int division to Float, error messages); both
/// [`Expr::eval`] and the vectorized kernels (`exec::vector`) route every
/// non-specialized operand combination through it, which is what keeps the
/// columnar path byte-identical to the row path.
pub(crate) fn eval_bin(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except division.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                return match op {
                    Add => Ok(Value::Int(a.wrapping_add(*b))),
                    Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    Div if *b == 0 => Err(RelError::Eval("division by zero".into())),
                    Div => Ok(Value::Float(*a as f64 / *b as f64)),
                    _ => unreachable!(),
                };
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(RelError::Eval(format!(
                        "arithmetic {} over non-numeric operands {l} and {r}",
                        op.symbol()
                    )))
                }
            };
            match op {
                Add => Ok(Value::Float(a + b)),
                Sub => Ok(Value::Float(a - b)),
                Mul => Ok(Value::Float(a * b)),
                Div if b == 0.0 => Err(RelError::Eval("division by zero".into())),
                Div => Ok(Value::Float(a / b)),
                _ => unreachable!(),
            }
        }
        Eq => Ok(l.sql_eq(r).map_or(Value::Null, Value::Bool)),
        Ne => Ok(l.sql_eq(r).map_or(Value::Null, |b| Value::Bool(!b))),
        Lt | Le | Gt | Ge => {
            let ord = match l.sql_cmp(r) {
                Some(o) => o,
                None if l.is_null() || r.is_null() => return Ok(Value::Null),
                None => {
                    return Err(RelError::Eval(format!(
                        "cannot compare {l} {} {r}",
                        op.symbol()
                    )))
                }
            };
            let b = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        And | Or => eval_logic(op, l, r),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => f.write_str(c),
            Expr::Lit(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::InList(e, vs) => {
                write!(f, "({e} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match v {
                        Value::Text(s) => write!(f, "'{s}'")?,
                        v => write!(f, "{v}")?,
                    }
                }
                f.write_str("))")
            }
            Expr::Coalesce(es) => {
                f.write_str("COALESCE(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::Case { arms, default } => {
                f.write_str("CASE")?;
                for (c, v) in arms {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {default} END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::new("packs", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("smoker", DataType::Bool),
                Column::new("weight", DataType::Float),
            ],
        )
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(2),
            Value::text("ada"),
            Value::Bool(true),
            Value::Float(61.5),
        ]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = schema();
        let e = Expr::col("packs").mul(Expr::lit(3i64)).ge(Expr::lit(6i64));
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::Bool(true));
        let e = Expr::col("weight").add(Expr::col("packs"));
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::Float(63.5));
    }

    #[test]
    fn int_division_produces_float() {
        let s = schema();
        let e = Expr::lit(5i64).div(Expr::lit(2i64));
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let s = schema();
        assert!(Expr::lit(1i64)
            .div(Expr::lit(0i64))
            .eval(&s, &row())
            .is_err());
        assert!(Expr::lit(1.0).div(Expr::lit(0.0)).eval(&s, &row()).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let null = Expr::Lit(Value::Null);
        // FALSE AND NULL = FALSE; TRUE AND NULL = NULL
        assert_eq!(
            Expr::lit(false).and(null.clone()).eval(&s, &row()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::lit(true).and(null.clone()).eval(&s, &row()).unwrap(),
            Value::Null
        );
        // TRUE OR NULL = TRUE
        assert_eq!(
            Expr::lit(true).or(null.clone()).eval(&s, &row()).unwrap(),
            Value::Bool(true)
        );
        // NULL comparisons are NULL, and matches() treats that as false.
        let cmp = null.clone().eq(Expr::lit(1i64));
        assert_eq!(cmp.eval(&s, &row()).unwrap(), Value::Null);
        assert!(!cmp.matches(&s, &row()).unwrap());
    }

    #[test]
    fn in_list_semantics() {
        let s = schema();
        let e = Expr::col("name").in_list(vec![Value::text("ada"), Value::text("bob")]);
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::Bool(true));
        let e = Expr::Lit(Value::Null).in_list(vec![Value::Int(1)]);
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::Null);
    }

    #[test]
    fn case_and_coalesce() {
        let s = schema();
        let e = Expr::Case {
            arms: vec![
                (Expr::col("packs").eq(Expr::lit(0i64)), Expr::lit("None")),
                (Expr::col("packs").lt(Expr::lit(2i64)), Expr::lit("Light")),
            ],
            default: Box::new(Expr::lit("Heavy")),
        };
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::text("Heavy"));
        let e = Expr::Coalesce(vec![Expr::Lit(Value::Null), Expr::col("name")]);
        assert_eq!(e.eval(&s, &row()).unwrap(), Value::text("ada"));
    }

    #[test]
    fn is_answered_maps_to_is_not_null() {
        let s = schema();
        assert_eq!(
            Expr::col("packs").is_not_null().eval(&s, &row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::Lit(Value::Null)
                .is_not_null()
                .eval(&s, &row())
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn referenced_columns_deduped_in_order() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::col("a"));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn map_columns_rewrites_refs() {
        let e = Expr::col("x").eq(Expr::lit(1i64));
        let m = e.map_columns(&|c| format!("t_{c}"));
        assert_eq!(m.referenced_columns(), vec!["t_x"]);
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(
            Expr::col("packs")
                .add(Expr::lit(1i64))
                .infer_type(&s)
                .unwrap(),
            DataType::Int
        );
        assert_eq!(
            Expr::col("packs")
                .add(Expr::col("weight"))
                .infer_type(&s)
                .unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("packs")
                .eq(Expr::lit(1i64))
                .infer_type(&s)
                .unwrap(),
            DataType::Bool
        );
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::col("packs")
            .ge(Expr::lit(2i64))
            .and(Expr::col("smoker"));
        assert_eq!(e.to_string(), "((packs >= 2) AND smoker)");
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        assert!(matches!(
            Expr::col("nope").eval(&s, &row()),
            Err(RelError::UnknownColumn { .. })
        ));
    }
}
