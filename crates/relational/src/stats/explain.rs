//! Plan explanation: render a plan tree with per-node cost estimates.
//!
//! Backs the `guava explain` CLI subcommand. Each node prints its
//! operator, the estimator's row/cost figures from [`cost_plan`], and —
//! in analyze mode — the *actual* row count obtained by materializing
//! the node's subtree with the oracle evaluator, so estimate drift is
//! visible next to the estimate it drifted from.

use super::cost::cost_plan;
use super::StatsCatalog;
use crate::algebra::{JoinKind, Plan};
use crate::database::Database;
use crate::error::RelResult;

/// Render `plan` as an indented operator tree with estimated rows and
/// cumulative cost per node. With `analyze`, every node's subtree is
/// additionally evaluated via [`Plan::eval_materialized`] and its actual
/// row count printed; a failing plan fails the explain with the same
/// error the query itself would raise.
pub fn explain_plan(
    plan: &Plan,
    db: &Database,
    catalog: &StatsCatalog,
    analyze: bool,
) -> RelResult<String> {
    let mut out = String::new();
    render(plan, db, catalog, analyze, 0, &mut out)?;
    Ok(out)
}

fn render(
    plan: &Plan,
    db: &Database,
    catalog: &StatsCatalog,
    analyze: bool,
    depth: usize,
    out: &mut String,
) -> RelResult<()> {
    let c = cost_plan(plan, catalog);
    let mut line = format!(
        "{:indent$}{}  (rows≈{}, cost≈{})",
        "",
        label(plan),
        fmt_num(c.rows),
        fmt_num(c.cost),
        indent = depth * 2
    );
    if analyze {
        let actual = plan.eval_materialized(db)?.len();
        line.push_str(&format!("  [actual rows={actual}]"));
    }
    out.push_str(&line);
    out.push('\n');
    for child in children(plan) {
        render(child, db, catalog, analyze, depth + 1, out)?;
    }
    Ok(())
}

fn children(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::Scan(_) | Plan::Values { .. } => vec![],
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Rename { input, .. }
        | Plan::Distinct { input }
        | Plan::Unpivot { input, .. }
        | Plan::Pivot { input, .. }
        | Plan::AggregateBy { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => vec![input],
        Plan::Join { left, right, .. } => vec![left, right],
        Plan::Union { inputs } => inputs.iter().collect(),
    }
}

fn label(plan: &Plan) -> String {
    match plan {
        Plan::Scan(name) => format!("Scan {name}"),
        Plan::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
        Plan::Select { predicate, .. } => format!("Select {predicate}"),
        Plan::Project { columns, .. } => {
            let names: Vec<&str> = columns.iter().map(|(a, _)| a.as_str()).collect();
            format!("Project [{}]", names.join(", "))
        }
        Plan::Rename { table, columns, .. } => match table {
            Some(t) => format!("Rename → {t} ({} columns)", columns.len()),
            None => format!("Rename ({} columns)", columns.len()),
        },
        Plan::Join { on, kind, .. } => {
            let k = match kind {
                JoinKind::Inner => "HashJoin",
                JoinKind::Left => "LeftHashJoin",
            };
            if on.is_empty() {
                format!("{k} (cross)  [build: right]")
            } else {
                let pairs: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("{k} on {}  [build: right]", pairs.join(" AND "))
            }
        }
        Plan::Union { inputs } => format!("Union [{} inputs]", inputs.len()),
        Plan::Distinct { .. } => "Distinct".to_owned(),
        Plan::Unpivot {
            attr_col, val_col, ..
        } => format!("Unpivot → ({attr_col}, {val_col})"),
        Plan::Pivot { attrs, .. } => format!("Pivot [{} attrs]", attrs.len()),
        Plan::AggregateBy {
            group_by,
            aggregates,
            ..
        } => format!(
            "Aggregate by [{}] ({} aggregates)",
            group_by.join(", "),
            aggregates.len()
        ),
        Plan::Sort { by, .. } => format!("Sort [{}]", by.join(", ")),
        Plan::Limit { n, .. } => format!("Limit {n}"),
    }
}

/// Compact numeric formatting for estimates: integers under a million
/// print exactly, everything else in short scientific-ish form.
fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1.0e6 {
        format!("{}", x as i64)
    } else if x.abs() < 1.0e6 {
        format!("{x:.1}")
    } else {
        format!("{x:.2e}")
    }
}
