//! Selectivity and cardinality estimation over [`Plan`]s.
//!
//! Textbook Selinger-style formulas driven by the [`StatsCatalog`]:
//! equality → `(1 - null_frac) / ndv`, ranges → linear interpolation
//! inside the column's `[min, max]` interval, `IS NULL` → the null
//! fraction, conjuncts multiply, disjuncts add with the independence
//! correction. Everything is clamped to `[0, 1]`, so estimates over
//! empty or all-NULL columns degrade to zero-row predictions rather than
//! NaNs or negative cardinalities.
//!
//! The estimator understands the optimizer's fused-select shape: the
//! rule layer ([`optimize`](crate::optimize::optimize)) fuses stacked selections into the
//! lazy `CASE WHEN inner THEN outer ELSE FALSE` form to preserve error
//! order, and [`selectivity`] prices that exactly like the conjunction
//! it represents.
//!
//! Estimates never change results — they only rank byte-identical plan
//! alternatives in [`super::cost`].

use super::{StatsCatalog, TableStats};
use crate::algebra::Plan;
use crate::expr::{BinOp, Expr};
use crate::value::Value;

/// Selectivity assumed for predicates the estimator cannot price
/// (opaque expressions, arithmetic, cross-column comparisons).
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// Equality selectivity without column statistics.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Rows assumed for a table the catalog has no statistics for.
const DEFAULT_TABLE_ROWS: f64 = 1_000.0;

/// Estimated fraction of rows satisfying `predicate`, given the input's
/// table statistics (when the input maps onto a base table). Always in
/// `[0, 1]`.
pub fn selectivity(predicate: &Expr, stats: Option<&TableStats>) -> f64 {
    sel(predicate, stats).clamp(0.0, 1.0)
}

fn sel(e: &Expr, stats: Option<&TableStats>) -> f64 {
    match e {
        Expr::Bin(BinOp::And, a, b) => sel(a, stats) * sel(b, stats),
        Expr::Bin(BinOp::Or, a, b) => {
            let (sa, sb) = (sel(a, stats), sel(b, stats));
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
        Expr::Not(inner) => 1.0 - sel(inner, stats),
        // The rule optimizer's fused-select shape: CASE WHEN inner THEN
        // outer ELSE FALSE ≡ inner ∧ outer (lazily evaluated).
        Expr::Case { arms, default }
            if arms.len() == 1 && **default == Expr::Lit(Value::Bool(false)) =>
        {
            sel(&arms[0].0, stats) * sel(&arms[0].1, stats)
        }
        Expr::Lit(Value::Bool(true)) => 1.0,
        Expr::Lit(Value::Bool(false)) | Expr::Lit(Value::Null) => 0.0,
        Expr::IsNull(inner) => match col_of(inner).and_then(|c| col_stats(stats, c)) {
            Some((cs, rows)) => cs.null_fraction(rows),
            None => DEFAULT_SELECTIVITY,
        },
        Expr::IsNotNull(inner) => match col_of(inner).and_then(|c| col_stats(stats, c)) {
            Some((cs, rows)) => 1.0 - cs.null_fraction(rows),
            None => 1.0 - DEFAULT_SELECTIVITY,
        },
        Expr::InList(inner, values) => match col_of(inner) {
            Some(c) => values
                .iter()
                .map(|v| eq_selectivity(stats, c, v))
                .sum::<f64>()
                .clamp(0.0, 1.0),
            None => DEFAULT_SELECTIVITY,
        },
        Expr::Bin(op, a, b) => {
            // Normalize to `column ⟨op⟩ literal`.
            let (col, op, lit) = match (&**a, &**b) {
                (Expr::Col(c), Expr::Lit(v)) => (c.as_str(), *op, v),
                (Expr::Lit(v), Expr::Col(c)) => (c.as_str(), flip(*op), v),
                _ => return DEFAULT_SELECTIVITY,
            };
            if lit.is_null() {
                // SQL three-valued logic: comparisons with NULL never pass.
                return 0.0;
            }
            match op {
                BinOp::Eq => eq_selectivity(stats, col, lit),
                BinOp::Ne => {
                    let (base, eq) = match col_stats(stats, col) {
                        Some((cs, rows)) => (
                            1.0 - cs.null_fraction(rows),
                            eq_selectivity(stats, col, lit),
                        ),
                        None => (1.0, DEFAULT_EQ_SELECTIVITY),
                    };
                    (base - eq).max(0.0)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    range_selectivity(stats, col, op, lit)
                }
                _ => DEFAULT_SELECTIVITY,
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn col_of(e: &Expr) -> Option<&str> {
    match e {
        Expr::Col(name) => Some(name),
        _ => None,
    }
}

fn col_stats<'a>(
    stats: Option<&'a TableStats>,
    col: &str,
) -> Option<(&'a super::ColumnStats, usize)> {
    let t = stats?;
    Some((t.column(col)?, t.rows()))
}

fn eq_selectivity(stats: Option<&TableStats>, col: &str, lit: &Value) -> f64 {
    let Some((cs, rows)) = col_stats(stats, col) else {
        return DEFAULT_EQ_SELECTIVITY;
    };
    if lit.is_null() {
        return 0.0;
    }
    let ndv = cs.ndv();
    if ndv <= 0.0 {
        // Empty or all-NULL column: nothing can match.
        return 0.0;
    }
    // Outside the observed range nothing matches (range is widen-only, so
    // this can only under-prune after deletes — still an estimate, never
    // a correctness input).
    if out_of_range(cs, lit) {
        return 0.0;
    }
    ((1.0 - cs.null_fraction(rows)) / ndv).clamp(0.0, 1.0)
}

fn out_of_range(cs: &super::ColumnStats, lit: &Value) -> bool {
    if cs.min.is_null() {
        return true; // no non-null values at all
    }
    matches!(lit.sql_cmp(&cs.min), Some(std::cmp::Ordering::Less))
        || matches!(lit.sql_cmp(&cs.max), Some(std::cmp::Ordering::Greater))
}

fn range_selectivity(stats: Option<&TableStats>, col: &str, op: BinOp, lit: &Value) -> f64 {
    let Some((cs, rows)) = col_stats(stats, col) else {
        return DEFAULT_SELECTIVITY;
    };
    if cs.ndv() <= 0.0 {
        return 0.0;
    }
    let non_null = 1.0 - cs.null_fraction(rows);
    let (min, max, point) = match (numeric(&cs.min), numeric(&cs.max), numeric(lit)) {
        (Some(a), Some(b), Some(p)) => (a, b, p),
        _ => return DEFAULT_SELECTIVITY * non_null,
    };
    let below = if max <= min {
        // Degenerate single-point range: everything is at `min`.
        if point >= min {
            1.0
        } else {
            0.0
        }
    } else {
        ((point - min) / (max - min)).clamp(0.0, 1.0)
    };
    let frac = match op {
        BinOp::Lt | BinOp::Le => below,
        BinOp::Gt | BinOp::Ge => 1.0 - below,
        _ => DEFAULT_SELECTIVITY,
    };
    (frac * non_null).clamp(0.0, 1.0)
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) if !f.is_nan() => Some(*f),
        Value::Date(d) => Some(*d as f64),
        _ => None,
    }
}

/// Table statistics visible at a plan node, when the node's rows are
/// still (a filtered/reordered view of) one base table. `Select`, `Sort`,
/// `Limit`, and `Distinct` preserve the mapping; everything else drops it.
pub(crate) fn plan_table_stats<'a>(
    plan: &Plan,
    catalog: &'a StatsCatalog,
) -> Option<&'a TableStats> {
    match plan {
        Plan::Scan(name) => catalog.table(name),
        Plan::Select { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input } => plan_table_stats(input, catalog),
        _ => None,
    }
}

/// Estimated output cardinality of `plan` under `catalog`. Never
/// negative; unknown tables assume a fixed default row count.
pub fn estimate_rows(plan: &Plan, catalog: &StatsCatalog) -> f64 {
    match plan {
        Plan::Scan(name) => catalog
            .table(name)
            .map_or(DEFAULT_TABLE_ROWS, |t| t.rows() as f64),
        Plan::Values { rows, .. } => rows.len() as f64,
        Plan::Select { input, predicate } => {
            let in_rows = estimate_rows(input, catalog);
            in_rows * selectivity(predicate, plan_table_stats(input, catalog))
        }
        Plan::Project { input, .. } | Plan::Rename { input, .. } | Plan::Sort { input, .. } => {
            estimate_rows(input, catalog)
        }
        Plan::Join {
            left,
            right,
            on,
            kind,
        } => {
            let l = estimate_rows(left, catalog);
            let r = estimate_rows(right, catalog);
            let mut rows = l * r;
            for (lc, rc) in on {
                rows *= join_edge_selectivity(
                    plan_table_stats(left, catalog),
                    lc,
                    plan_table_stats(right, catalog),
                    rc,
                    l,
                    r,
                );
            }
            if *kind == crate::algebra::JoinKind::Left {
                rows = rows.max(l);
            }
            rows
        }
        Plan::Union { inputs } => inputs.iter().map(|p| estimate_rows(p, catalog)).sum(),
        Plan::Distinct { input } => estimate_rows(input, catalog),
        Plan::Unpivot { input, keys, .. } => {
            // One output row per non-key column; without the input arity we
            // approximate data columns from the base table's column count.
            let data_cols = plan_table_stats(input, catalog)
                .map(|t| t.column_names().count().saturating_sub(keys.len()))
                .unwrap_or(3)
                .max(1);
            estimate_rows(input, catalog) * data_cols as f64
        }
        Plan::Pivot { input, attrs, .. } => {
            estimate_rows(input, catalog) / attrs.len().max(1) as f64
        }
        Plan::AggregateBy {
            input, group_by, ..
        } => {
            let in_rows = estimate_rows(input, catalog);
            if group_by.is_empty() {
                return 1.0;
            }
            let stats = plan_table_stats(input, catalog);
            let mut groups = 1.0;
            let mut known = false;
            for g in group_by {
                if let Some((cs, _)) = col_stats(stats, g) {
                    groups *= cs.ndv().max(1.0);
                    known = true;
                }
            }
            if known {
                groups.min(in_rows)
            } else {
                in_rows.sqrt().max(1.0)
            }
        }
        Plan::Limit { input, n } => estimate_rows(input, catalog).min(*n as f64),
    }
}

/// Selectivity of one equi-join edge: `1 / max(ndv_left, ndv_right)`,
/// falling back to `1 / max(|L|, |R|)` when neither side has column
/// statistics (the classic key-join assumption).
pub(crate) fn join_edge_selectivity(
    left: Option<&TableStats>,
    lcol: &str,
    right: Option<&TableStats>,
    rcol: &str,
    l_rows: f64,
    r_rows: f64,
) -> f64 {
    let lndv = left
        .and_then(|t| t.column(lcol))
        .map(super::ColumnStats::ndv);
    let rndv = right
        .and_then(|t| t.column(rcol))
        .map(super::ColumnStats::ndv);
    let denom = match (lndv, rndv) {
        (Some(a), Some(b)) => a.max(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => l_rows.max(r_rows),
    };
    (1.0 / denom.max(1.0)).clamp(0.0, 1.0)
}
