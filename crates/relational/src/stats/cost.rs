//! The cost model and the cost-based plan rewrite (DESIGN.md §17).
//!
//! # What the CBO is allowed to change
//!
//! The executor's contract is byte-identity: every lane produces the
//! same rows *in the same order* with the same first error as the
//! materializing oracle. A cost-based rewrite must preserve that, so the
//! only join transformation applied is **leaf-order-preserving
//! re-association** of inner-equi-join chains: the left-to-right
//! sequence of join leaves is kept fixed and only the *shape* of the
//! tree over that sequence changes (matrix-chain / Selinger-style
//! interval DP). This is byte-identity-safe because, for the engine's
//! equi-joins:
//!
//! - output rows of any association are ordered lexicographically by
//!   leaf row indices (probe emits left rows in order, matches in
//!   build-insertion order), so every shape yields the same row sequence;
//! - the join output schema name is the `_`-concatenation of its input
//!   names — associative, so every shape names the result identically,
//!   and with globally distinct leaf columns the column list is the same
//!   plain concatenation in leaf order;
//! - equi-key matching is infallible (NULL keys never match, no
//!   comparisons that can error), every shape evaluates all leaves, and
//!   each equi-edge is applied exactly once at its lowest common
//!   ancestor in the new shape — same predicate set, same matches.
//!
//! Commuting a join's sides would reorder output rows and is therefore
//! **never** done. Hash-build-side selection still falls out of the DP:
//! the build side is always a node's right subrange, so choosing the
//! split point chooses how many rows are built against
//! ([`COST_HASH_BUILD`] prices builds above probes).
//!
//! Single-fault error parity is preserved (all leaves are always
//! evaluated, so the one failing operator fails in every shape); plans
//! with *several* independent data errors may surface a different one of
//! them, exactly the latitude the executor lanes already have
//! (`exec::ops` module docs).
//!
//! # Guards
//!
//! Re-association bails — returning the plan unchanged — unless every
//! guard holds: only `JoinKind::Inner` nodes are flattened (`Left` joins
//! and every non-join operator are chain boundaries), every leaf's
//! output columns are derivable and globally distinct across the chain
//! (so no shape ever triggers collision prefixing), and every `on`
//! column resolves to exactly one leaf on the correct side of its
//! original join. Cross-join nodes (`on = []`) may appear in the chosen
//! shape when edges don't cover a split; the cost model prices them at
//! the full row product, so they are only chosen when genuinely cheaper.

use super::estimate::{estimate_rows, join_edge_selectivity, plan_table_stats};
use super::StatsCatalog;
use crate::algebra::{JoinKind, Plan};
use crate::database::Database;
use crate::optimize::{map_children, optimize};

/// Cost units charged per row on the build side of a hash join, relative
/// to 1.0 per probed or emitted row. Building (allocating buckets,
/// hashing keys into them) is costlier than probing, which is what makes
/// the DP prefer small build (right) sides.
pub const COST_HASH_BUILD: f64 = 2.0;

/// Longest inner-join chain the interval DP will re-associate. The DP is
/// `O(n³)`; beyond this a chain is left as written.
const MAX_CHAIN_LEAVES: usize = 16;

/// Estimated rows and cumulative cost of a plan under a catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated total work (rows touched, weighted) for the subtree.
    pub cost: f64,
}

/// Estimate rows and total cost for `plan`. Purely advisory — used to
/// rank byte-identical alternatives and to annotate `explain` output.
pub fn cost_plan(plan: &Plan, catalog: &StatsCatalog) -> PlanCost {
    let rows = estimate_rows(plan, catalog);
    let cost = match plan {
        Plan::Scan(_) | Plan::Values { .. } => rows,
        Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Distinct { input } => {
            let c = cost_plan(input, catalog);
            c.cost + c.rows
        }
        Plan::Rename { input, .. } | Plan::Limit { input, .. } => cost_plan(input, catalog).cost,
        Plan::Join { left, right, .. } => {
            let l = cost_plan(left, catalog);
            let r = cost_plan(right, catalog);
            l.cost + r.cost + join_node_cost(l.rows, r.rows, rows)
        }
        Plan::Union { inputs } => {
            inputs
                .iter()
                .map(|p| cost_plan(p, catalog).cost)
                .sum::<f64>()
                + rows
        }
        Plan::Unpivot { input, .. } => cost_plan(input, catalog).cost + rows,
        Plan::Pivot { input, .. } | Plan::AggregateBy { input, .. } => {
            let c = cost_plan(input, catalog);
            c.cost + c.rows + rows
        }
        Plan::Sort { input, .. } => {
            let c = cost_plan(input, catalog);
            c.cost + c.rows * c.rows.max(2.0).log2()
        }
    };
    PlanCost { rows, cost }
}

/// Cost of one hash-join node: build the right side, probe the left,
/// emit the output.
fn join_node_cost(left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
    COST_HASH_BUILD * right_rows + left_rows + out_rows
}

/// The cost-based optimizer entry point: rule-based rewrites
/// ([`optimize`]) followed by statistics-driven re-association of
/// inner-join chains. The returned plan evaluates byte-identically to
/// `plan` — rows, order, and (single-fault) errors — under every
/// executor lane; only its join shape (and therefore its cost) differs.
///
/// This is deliberately a *separate* entry point from [`optimize`]: the
/// rule layer is stats-free and conservative by contract (it leaves
/// joins untouched), while this rewrite needs a [`Database`] to resolve
/// leaf schemas and a [`StatsCatalog`] to price alternatives.
pub fn optimize_with_stats(plan: &Plan, db: &Database, catalog: &StatsCatalog) -> Plan {
    reorder(&optimize(plan), db, catalog)
}

fn reorder(plan: &Plan, db: &Database, catalog: &StatsCatalog) -> Plan {
    if matches!(
        plan,
        Plan::Join {
            kind: JoinKind::Inner,
            ..
        }
    ) {
        if let Some(rebuilt) = try_reassociate(plan, db, catalog) {
            return rebuilt;
        }
    }
    map_children(plan, &|child| reorder(child, db, catalog))
}

/// One equi-join edge of a flattened chain, attributed to its leaves.
struct Edge {
    li: usize,
    ri: usize,
    lcol: String,
    rcol: String,
}

/// Flatten a maximal inner-join chain, run the interval DP over its leaf
/// sequence, and rebuild the cheapest shape. `None` = a guard failed;
/// the caller falls back to the generic child-wise descent.
fn try_reassociate(plan: &Plan, db: &Database, catalog: &StatsCatalog) -> Option<Plan> {
    let mut leaf_refs: Vec<&Plan> = Vec::new();
    let mut pending: Vec<(String, String, usize)> = Vec::new(); // (lcol, rcol, split)
    flatten(plan, &mut leaf_refs, &mut pending);
    let n = leaf_refs.len();
    if !(3..=MAX_CHAIN_LEAVES).contains(&n) {
        return None;
    }

    // Reorder within each leaf first (nested chains past boundaries),
    // then derive the leaves' output columns. Re-association never
    // changes a subtree's schema, so columns computed on the reordered
    // leaves hold for the original ones too.
    let leaves: Vec<Plan> = leaf_refs.iter().map(|l| reorder(l, db, catalog)).collect();
    let mut col_leaf: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, leaf) in leaves.iter().enumerate() {
        let (_, cols) = output_columns(leaf, db)?;
        for c in cols {
            // Globally distinct column names: the guard that keeps every
            // shape's join schema a plain concatenation (no collision
            // prefixing) and makes edge attribution unambiguous.
            if col_leaf.insert(c, i).is_some() {
                return None;
            }
        }
    }

    // Attribute each equi-edge to its leaves and verify it respects the
    // original join's sides (left column left of the split, right column
    // at or past it) — anything else means name shadowing or a plan that
    // would not have compiled; keep it as written.
    let mut edges: Vec<Edge> = Vec::with_capacity(pending.len());
    for (lcol, rcol, split) in pending {
        let li = *col_leaf.get(&lcol)?;
        let ri = *col_leaf.get(&rcol)?;
        if li >= split || ri < split {
            return None;
        }
        edges.push(Edge { li, ri, lcol, rcol });
    }
    edges.sort_by(|a, b| (a.li, a.ri, &a.lcol, &a.rcol).cmp(&(b.li, b.ri, &b.lcol, &b.rcol)));

    // Estimated cardinality of every contiguous leaf range: product of
    // leaf estimates times the selectivity of every edge internal to the
    // range (independence assumption).
    let leaf_rows: Vec<f64> = leaves
        .iter()
        .map(|l| estimate_rows(l, catalog).max(1.0))
        .collect();
    let leaf_costs: Vec<f64> = leaves.iter().map(|l| cost_plan(l, catalog).cost).collect();
    let edge_sels: Vec<f64> = edges
        .iter()
        .map(|e| {
            join_edge_selectivity(
                plan_table_stats(&leaves[e.li], catalog),
                &e.lcol,
                plan_table_stats(&leaves[e.ri], catalog),
                &e.rcol,
                leaf_rows[e.li],
                leaf_rows[e.ri],
            )
        })
        .collect();
    let mut range_rows = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        range_rows[i][i] = leaf_rows[i];
        for j in i + 1..n {
            let mut rows = range_rows[i][j - 1] * leaf_rows[j];
            for (e, sel) in edges.iter().zip(&edge_sels) {
                if e.li >= i && e.ri == j {
                    rows *= sel;
                }
            }
            range_rows[i][j] = rows;
        }
    }

    // Interval DP (matrix-chain over the fixed leaf order). Splits are
    // scanned from `j-1` down so the syntactic left-deep shape is the
    // first candidate and wins all cost ties — determinism, and no
    // gratuitous reshaping of already-optimal plans.
    let mut cost = vec![vec![0.0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for (i, c) in leaf_costs.iter().enumerate() {
        cost[i][i] = *c;
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = f64::INFINITY;
            let mut best_k = j - 1;
            for k in (i..j).rev() {
                let c = cost[i][k]
                    + cost[k + 1][j]
                    + join_node_cost(range_rows[i][k], range_rows[k + 1][j], range_rows[i][j]);
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }

    Some(rebuild(&leaves, &edges, &split, 0, n - 1))
}

/// Collect the leaves (left-to-right) and `on` pairs of a maximal
/// inner-join chain. Each pending edge remembers the leaf count at its
/// node's left/right boundary for side verification.
fn flatten<'p>(
    p: &'p Plan,
    leaves: &mut Vec<&'p Plan>,
    pending: &mut Vec<(String, String, usize)>,
) {
    match p {
        Plan::Join {
            left,
            right,
            on,
            kind: JoinKind::Inner,
        } => {
            flatten(left, leaves, pending);
            let split = leaves.len();
            flatten(right, leaves, pending);
            for (lc, rc) in on {
                pending.push((lc.clone(), rc.clone(), split));
            }
        }
        other => leaves.push(other),
    }
}

/// Reassemble the DP's chosen shape, attaching each edge at its lowest
/// common ancestor (the unique node whose split separates its leaves).
fn rebuild(leaves: &[Plan], edges: &[Edge], split: &[Vec<usize>], i: usize, j: usize) -> Plan {
    if i == j {
        return leaves[i].clone();
    }
    let k = split[i][j];
    let on: Vec<(String, String)> = edges
        .iter()
        .filter(|e| e.li >= i && e.li <= k && e.ri > k && e.ri <= j)
        .map(|e| (e.lcol.clone(), e.rcol.clone()))
        .collect();
    Plan::Join {
        left: Box::new(rebuild(leaves, edges, split, i, k)),
        right: Box::new(rebuild(leaves, edges, split, k + 1, j)),
        on,
        kind: JoinKind::Inner,
    }
}

/// The output relation name and column names of a plan, derived without
/// evaluating it — mirrors the schema computations in `algebra`. `None`
/// when derivation would need machinery this advisory layer doesn't
/// carry (aggregates, pivots, unions); chains over such leaves are
/// simply not re-associated.
fn output_columns(plan: &Plan, db: &Database) -> Option<(String, Vec<String>)> {
    match plan {
        Plan::Scan(name) => {
            let s = db.table(name).ok()?.schema();
            Some((
                s.name.clone(),
                s.columns().iter().map(|c| c.name.clone()).collect(),
            ))
        }
        Plan::Values { schema, .. } => Some((
            schema.name.clone(),
            schema.columns().iter().map(|c| c.name.clone()).collect(),
        )),
        Plan::Select { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => output_columns(input, db),
        Plan::Project { input, columns } => {
            let (name, _) = output_columns(input, db)?;
            Some((name, columns.iter().map(|(a, _)| a.clone()).collect()))
        }
        Plan::Rename {
            input,
            table,
            columns,
        } => {
            let (mut name, mut cols) = output_columns(input, db)?;
            if let Some(t) = table {
                name = t.clone();
            }
            for (from, to) in columns {
                let idx = cols.iter().position(|c| c == from)?;
                cols[idx] = to.clone();
            }
            Some((name, cols))
        }
        Plan::Join { left, right, .. } => {
            let (ln, lcols) = output_columns(left, db)?;
            let (rn, rcols) = output_columns(right, db)?;
            let mut cols = lcols;
            for c in rcols {
                // Mirror `join_output_schema`'s collision prefixing.
                if cols.contains(&c) {
                    cols.push(format!("{rn}.{c}"));
                } else {
                    cols.push(c);
                }
            }
            Some((format!("{ln}_{rn}"), cols))
        }
        Plan::Union { .. }
        | Plan::Unpivot { .. }
        | Plan::Pivot { .. }
        | Plan::AggregateBy { .. } => None,
    }
}
