//! A small, deterministic KMV (k-minimum-values) distinct sketch.
//!
//! The statistics catalog needs number-of-distinct-values (NDV) estimates
//! per column to price equality predicates and join edges, but exact
//! distinct counting would cost a hash set per column per segment. A KMV
//! sketch keeps only the `k` smallest *distinct* 64-bit hashes seen; if
//! the k-th smallest hash is `h`, the hashed values are roughly uniform
//! on `[0, 2^64)`, so the stream holds about `(k-1) · 2^64 / h` distinct
//! values. With fewer than `k` distinct hashes the count is exact.
//!
//! Two properties matter for the engine:
//!
//! - **Deterministic**: the hash is a fixed splitmix64-based function of
//!   the value (no per-process seed), so stats — and therefore every
//!   cost-based plan choice — are reproducible across runs and identical
//!   between a patched catalog and a rebuilt one over the same values.
//! - **Mergeable**: the union of two sketches' hash sets, re-trimmed to
//!   the `k` smallest, is exactly the sketch of the concatenated streams.
//!   Per-segment sketches built at sealing time merge into table-level
//!   sketches without rescanning rows.
//!
//! Inserts only: a KMV sketch cannot forget a value, so under deletions
//! the estimate is an upper bound on the live NDV (see
//! [`super::ColumnStats`] for how the catalog documents that drift).

use crate::value::Value;
use std::collections::BTreeSet;

/// Default number of minimum hashes kept. Relative error of the KMV
/// estimator is ≈ 1/√k ≈ 6% at 256, at a cost of ~2 KiB per column.
pub const SKETCH_K: usize = 256;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic 64-bit hash of a non-null value.
///
/// Numeric values that compare `sql_eq`-equal hash equal: an `Int` that
/// is exactly representable as `f64` hashes through its float bits, so a
/// FLOAT column holding widened INTs (`Mixed` segment storage) does not
/// double-count `5` and `5.0`. `-0.0` normalizes to `0.0` and every NaN
/// bit pattern collapses to one bucket, mirroring the executor's lane
/// key canonicalization.
fn hash_value(v: &Value) -> u64 {
    let (tag, bits) = match v {
        Value::Null => (0u64, 0u64),
        Value::Bool(b) => (1, u64::from(*b)),
        Value::Int(i) => {
            let f = *i as f64;
            if f as i64 == *i && f.is_finite() {
                (3, canonical_f64_bits(f))
            } else {
                (2, *i as u64)
            }
        }
        Value::Float(f) => (3, canonical_f64_bits(*f)),
        Value::Text(s) => {
            // FNV-1a over the bytes, finalized by splitmix64 below.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in s.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            (4, h)
        }
        Value::Date(d) => (5, *d as u64),
    };
    splitmix64(bits ^ splitmix64(tag))
}

fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0f64.to_bits() // fold -0.0 into 0.0
    } else {
        f.to_bits()
    }
}

/// A deterministic, mergeable KMV distinct sketch (see module docs).
///
/// NULLs are ignored on insert: the sketch estimates the number of
/// distinct *non-null* values, the quantity selectivity formulas divide
/// by. Lives inside sealed [`SegmentColumn`](crate::segment::SegmentColumn)s,
/// so it derives the same `Clone`/`PartialEq` the segment does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    k: usize,
    /// The `k` smallest distinct hashes seen so far, ordered.
    hashes: BTreeSet<u64>,
}

impl Default for DistinctSketch {
    fn default() -> DistinctSketch {
        DistinctSketch::new()
    }
}

impl DistinctSketch {
    /// A sketch with the default precision [`SKETCH_K`].
    pub fn new() -> DistinctSketch {
        DistinctSketch::with_k(SKETCH_K)
    }

    /// A sketch keeping the `k` smallest hashes (min 16 — below that the
    /// estimator is noise).
    pub fn with_k(k: usize) -> DistinctSketch {
        DistinctSketch {
            k: k.max(16),
            hashes: BTreeSet::new(),
        }
    }

    /// Observe one value. NULLs are ignored.
    pub fn insert(&mut self, v: &Value) {
        if !v.is_null() {
            self.insert_hash(hash_value(v));
        }
    }

    fn insert_hash(&mut self, h: u64) {
        if self.hashes.len() < self.k {
            self.hashes.insert(h);
            return;
        }
        let max = *self.hashes.iter().next_back().expect("non-empty at k");
        if h < max && self.hashes.insert(h) {
            self.hashes.remove(&max);
        }
    }

    /// Fold another sketch's observations into this one — exactly the
    /// sketch of the two underlying streams concatenated.
    pub fn merge(&mut self, other: &DistinctSketch) {
        for &h in &other.hashes {
            self.insert_hash(h);
        }
    }

    /// Estimated number of distinct non-null values observed. Exact while
    /// fewer than `k` distinct hashes have been seen.
    pub fn estimate(&self) -> f64 {
        let n = self.hashes.len();
        if n < self.k {
            return n as f64;
        }
        let kth = *self.hashes.iter().next_back().expect("non-empty at k") as f64;
        // ndv ≈ (k-1) / R, R = kth-smallest hash normalized to (0, 1].
        ((self.k - 1) as f64) * ((u64::MAX as f64) + 1.0) / kth.max(1.0)
    }

    /// Whether the sketch has observed no non-null values.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = DistinctSketch::new();
        for i in 0..100i64 {
            s.insert(&Value::Int(i));
            s.insert(&Value::Int(i)); // duplicates don't count
        }
        s.insert(&Value::Null); // nulls don't count
        assert_eq!(s.estimate(), 100.0);
    }

    #[test]
    fn estimate_within_bounds_at_10k() {
        let mut s = DistinctSketch::new();
        for i in 0..10_000i64 {
            s.insert(&Value::Int(i * 7 + 13));
        }
        let est = s.estimate();
        let err = (est - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.15, "NDV estimate {est} off by {err:.3}");
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = DistinctSketch::new();
        let mut b = DistinctSketch::new();
        let mut whole = DistinctSketch::new();
        for i in 0..5_000i64 {
            let v = Value::Int(i);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            whole.insert(&v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn widened_ints_hash_like_floats() {
        let mut a = DistinctSketch::new();
        a.insert(&Value::Int(5));
        a.insert(&Value::Float(5.0));
        assert_eq!(a.estimate(), 1.0);
        let mut b = DistinctSketch::new();
        b.insert(&Value::Float(0.0));
        b.insert(&Value::Float(-0.0));
        b.insert(&Value::Float(f64::NAN));
        b.insert(&Value::Float(f64::from_bits(0x7ff8_0000_0000_0001))); // another NaN
        assert_eq!(b.estimate(), 2.0);
    }
}
