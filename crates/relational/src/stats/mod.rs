//! The statistics catalog: per-table/per-column statistics feeding the
//! cost-based optimizer (DESIGN.md §17).
//!
//! # Lifecycle
//!
//! Statistics are **collected where the data already flows**, never by a
//! dedicated scan pass of their own:
//!
//! - *Segment sealing*: every sealed [`SegmentColumn`](crate::segment::SegmentColumn) carries a
//!   [`DistinctSketch`] accumulated while its zone map is built, so the
//!   sealed prefix of a table contributes row counts, min/max, null
//!   counts, and NDV for free ([`TableStats::from_table`] merely merges
//!   per-segment statistics).
//! - *Load*: the row-form delta tail past the sealed prefix is scanned
//!   once, row-wise, when the table's stats are first collected.
//! - *Refresh*: a [`TableDelta`] captured by a
//!   [`DeltaCatalog`](crate::delta::DeltaCatalog) **patches** the resting
//!   [`StatsCatalog`] in `O(delta)` — counts are adjusted exactly, while
//!   min/max/NDV only widen (see below). The warehouse service layer
//!   patches its snapshot's catalog on every generational install instead
//!   of rebuilding it.
//!
//! # Exact vs. conservative fields
//!
//! Row counts and null counts are maintained *exactly* under patches
//! (deletes carry their row content, so per-column null deltas are
//! known). Min/max and the NDV sketch are *widen-only*: inserts extend
//! them, deletes do not shrink them. Estimates therefore stay sound in
//! the direction the optimizer cares about — a too-wide range or a
//! too-high NDV only makes selectivity estimates more conservative, never
//! resurrects rows — and a full re-collect
//! ([`StatsCatalog::collect`]) re-tightens them whenever a table is
//! rebuilt anyway.
//!
//! Statistics are advisory: they influence which of several
//! byte-identical physical plans is chosen (see [`cost`]), never what a
//! plan evaluates to.

pub mod cost;
pub mod estimate;
pub mod explain;
pub mod sketch;

pub use cost::{optimize_with_stats, PlanCost};
pub use explain::explain_plan;
pub use sketch::DistinctSketch;

use crate::database::Database;
use crate::delta::{DeltaSet, TableDelta};
use crate::segment::ZoneMap;
use crate::table::{Row, Table};
use crate::value::Value;
use std::collections::BTreeMap;

/// Statistics for one column: exact null/row accounting plus widen-only
/// min/max and NDV (see module docs for the patch semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of NULL values (exact under patches).
    pub null_count: usize,
    /// Least non-null value seen ([`Value::total_cmp`]); `Null` if none.
    pub min: Value,
    /// Greatest non-null value seen; `Null` if none.
    pub max: Value,
    /// Distinct-value sketch over non-null values.
    pub sketch: DistinctSketch,
}

impl Default for ColumnStats {
    fn default() -> ColumnStats {
        ColumnStats {
            null_count: 0,
            min: Value::Null,
            max: Value::Null,
            sketch: DistinctSketch::new(),
        }
    }
}

impl ColumnStats {
    /// Observe one value (widens min/max, feeds the sketch, counts nulls).
    pub fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        if self.min.is_null() || v.total_cmp(&self.min).is_lt() {
            self.min = v.clone();
        }
        if self.max.is_null() || v.total_cmp(&self.max).is_gt() {
            self.max = v.clone();
        }
        self.sketch.insert(v);
    }

    /// Fold a sealed segment column's zone map and sketch in.
    fn absorb_segment(&mut self, zone: &ZoneMap, sketch: &DistinctSketch) {
        self.null_count += zone.null_count;
        if !zone.min.is_null() && (self.min.is_null() || zone.min.total_cmp(&self.min).is_lt()) {
            self.min = zone.min.clone();
        }
        if !zone.max.is_null() && (self.max.is_null() || zone.max.total_cmp(&self.max).is_gt()) {
            self.max = zone.max.clone();
        }
        self.sketch.merge(sketch);
    }

    /// Estimated number of distinct non-null values, clamped to at least
    /// 1 when any non-null value was observed (so selectivities never
    /// divide by zero) and exactly 0 for empty/all-NULL columns.
    pub fn ndv(&self) -> f64 {
        if self.sketch.is_empty() {
            0.0
        } else {
            self.sketch.estimate().max(1.0)
        }
    }

    /// Fraction of `rows` that are NULL in this column, clamped to `[0, 1]`.
    /// An empty table reports 0.
    pub fn null_fraction(&self, rows: usize) -> f64 {
        if rows == 0 {
            0.0
        } else {
            (self.null_count as f64 / rows as f64).clamp(0.0, 1.0)
        }
    }
}

/// Statistics for one table: a row count plus per-column stats in schema
/// order, addressable by column name.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    rows: usize,
    columns: Vec<(String, ColumnStats)>,
}

impl TableStats {
    /// Collect statistics for a table.
    ///
    /// The sealed columnar prefix contributes its per-segment zone maps
    /// and NDV sketches (built at sealing time — no rescan); only the
    /// row-form delta tail past [`covered`](crate::segment::SegmentList::covered)
    /// is scanned row-wise. As a side effect the table's segments are
    /// sealed if they were not yet — stats collection warms the same
    /// resting format scans read from.
    pub fn from_table(t: &Table) -> TableStats {
        let schema = t.schema();
        let mut columns: Vec<(String, ColumnStats)> = schema
            .columns()
            .iter()
            .map(|c| (c.name.clone(), ColumnStats::default()))
            .collect();
        let list = t.segments();
        for seg in list.segments() {
            for (i, (_, cs)) in columns.iter_mut().enumerate() {
                let col = seg.column(i);
                cs.absorb_segment(col.zone(), col.ndv_sketch());
            }
        }
        for row in &t.rows()[list.covered()..] {
            for (i, (_, cs)) in columns.iter_mut().enumerate() {
                cs.observe(&row[i]);
            }
        }
        TableStats {
            rows: t.len(),
            columns,
        }
    }

    /// Total row count (exact under patches).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Stats for a column, by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Patch with a captured delta: row/null counts adjust exactly,
    /// min/max/NDV widen from the inserted rows (deletes never shrink
    /// them — see module docs). Rows whose arity does not match are
    /// ignored defensively; the delta layer validates rows before commit.
    pub fn patch(&mut self, delta: &TableDelta) {
        for (_, row) in &delta.deleted {
            self.rows = self.rows.saturating_sub(1);
            self.retract_nulls(row);
        }
        for row in &delta.inserted {
            self.rows += 1;
            if row.len() == self.columns.len() {
                for (i, (_, cs)) in self.columns.iter_mut().enumerate() {
                    cs.observe(&row[i]);
                }
            }
        }
    }

    fn retract_nulls(&mut self, row: &Row) {
        if row.len() != self.columns.len() {
            return;
        }
        for (i, (_, cs)) in self.columns.iter_mut().enumerate() {
            if row[i].is_null() {
                cs.null_count = cs.null_count.saturating_sub(1);
            }
        }
    }
}

/// The resting statistics catalog: [`TableStats`] per table name.
///
/// A catalog describes one [`Database`] (table names are unique within
/// it). It is collected once — [`StatsCatalog::collect`] — and then kept
/// warm by `O(delta)` patches from the same [`TableDelta`]s the
/// differential layer captures, so a long-lived engine never pays a
/// rescan on refresh.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsCatalog {
    tables: BTreeMap<String, TableStats>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Collect statistics for every table in `db`.
    pub fn collect(db: &Database) -> StatsCatalog {
        let mut cat = StatsCatalog::new();
        for name in db.table_names() {
            if let Ok(t) = db.table(name) {
                cat.tables
                    .insert(name.to_owned(), TableStats::from_table(t));
            }
        }
        cat
    }

    /// Stats for a table, by name.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Install (or replace) one table's statistics.
    pub fn insert(&mut self, name: impl Into<String>, stats: TableStats) {
        self.tables.insert(name.into(), stats);
    }

    /// Drop one table's statistics (e.g. when the table itself drops).
    pub fn remove(&mut self, name: &str) -> Option<TableStats> {
        self.tables.remove(name)
    }

    /// Patch one table's statistics with a captured delta. Unknown tables
    /// are ignored — a catalog only tracks what it collected.
    pub fn patch(&mut self, table: &str, delta: &TableDelta) {
        if let Some(t) = self.tables.get_mut(table) {
            t.patch(delta);
        }
    }

    /// Patch from a whole captured [`DeltaSet`] (every table the set
    /// touches, by table name — the catalog is per-database, so the set's
    /// database component is not consulted).
    pub fn patch_all(&mut self, deltas: &DeltaSet) {
        for ((_, table), delta) in deltas.iter() {
            self.patch(table, delta);
        }
    }

    /// Number of tables tracked.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog tracks no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}
