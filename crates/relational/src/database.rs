//! Databases (named table collections) and catalogs (named databases).
//!
//! A contributor's physical database, the temporary databases between ETL
//! stages (Figure 6), and the warehouse's study-schema storage (Figure 7)
//! are all `Database` instances; a `Catalog` holds them side by side.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of tables. Table names are unique; iteration order is
/// deterministic (sorted by name) so printed output is stable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Register a table under its schema name.
    pub fn create_table(&mut self, table: Table) -> RelResult<()> {
        let name = table.schema().name.clone();
        if self.tables.contains_key(&name) {
            return Err(RelError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a table, replacing any existing one of the same name (used
    /// by ETL loads into temporary databases).
    pub fn put_table(&mut self, table: Table) {
        self.tables.insert(table.schema().name.clone(), table);
    }

    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    pub fn table_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    pub fn drop_table(&mut self, name: &str) -> RelResult<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total row count across all tables (used by size reports in the
    /// materialization experiments).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Restore all primary-key indexes after deserialization.
    pub fn reindex(&mut self) -> RelResult<()> {
        for t in self.tables.values_mut() {
            t.reindex()?;
        }
        Ok(())
    }
}

/// A catalog of databases, keyed by name — one per contributor plus the
/// temporary and warehouse databases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    databases: BTreeMap<String, Database>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn insert(&mut self, db: Database) {
        self.databases.insert(db.name.clone(), db);
    }

    pub fn database(&self, name: &str) -> RelResult<&Database> {
        self.databases
            .get(name)
            .ok_or_else(|| RelError::UnknownTable(format!("database `{name}`")))
    }

    pub fn database_mut(&mut self, name: &str) -> RelResult<&mut Database> {
        self.databases
            .get_mut(name)
            .ok_or_else(|| RelError::UnknownTable(format!("database `{name}`")))
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.databases.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.databases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::{DataType, Value};

    fn t(name: &str) -> Table {
        Table::new(Schema::new(name, vec![Column::new("x", DataType::Int)]).unwrap())
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new("d");
        db.create_table(t("a")).unwrap();
        assert!(db.table("a").is_ok());
        assert!(matches!(db.table("b"), Err(RelError::UnknownTable(_))));
        assert!(matches!(
            db.create_table(t("a")),
            Err(RelError::DuplicateTable(_))
        ));
    }

    #[test]
    fn put_table_replaces() {
        let mut db = Database::new("d");
        db.create_table(t("a")).unwrap();
        let mut t2 = t("a");
        t2.insert(vec![Value::Int(1)]).unwrap();
        db.put_table(t2);
        assert_eq!(db.table("a").unwrap().len(), 1);
    }

    #[test]
    fn drop_and_counts() {
        let mut db = Database::new("d");
        db.create_table(t("a")).unwrap();
        db.create_table(t("b")).unwrap();
        assert_eq!(db.table_count(), 2);
        db.drop_table("a").unwrap();
        assert_eq!(db.table_count(), 1);
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn catalog_round() {
        let mut c = Catalog::new();
        c.insert(Database::new("vendor1"));
        c.insert(Database::new("vendor2"));
        assert_eq!(c.len(), 2);
        assert!(c.database("vendor1").is_ok());
        assert!(c.database("vendor9").is_err());
        let names: Vec<&str> = c.names().collect();
        assert_eq!(names, vec!["vendor1", "vendor2"]);
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new("d");
        db.create_table(t("zeta")).unwrap();
        db.create_table(t("alpha")).unwrap();
        let names: Vec<&str> = db.table_names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
