//! Delta capture and differential plan evaluation.
//!
//! This module is the relational half of the warehouse's incremental
//! refresh path (DESIGN.md §12). It has three layers:
//!
//! 1. **Change capture** — [`DeltaCatalog`] wraps a [`Catalog`] and records
//!    every mutation as a per-table [`TableDelta`]: the set of deleted
//!    pre-state rows (by ordinal) plus the list of inserted rows. Updates
//!    are captured as delete + re-insert, so under the **canonical merge**
//!    an updated row moves to the end of its table. That merge — retained
//!    pre-state rows in their original order, then inserted rows in
//!    insertion order — is the documented deterministic row order every
//!    refresh consumer reproduces.
//! 2. **Differential operators** — [`DeltaPlan`] caches per-operator state
//!    for a [`Plan`] and, given a [`Change`] per scanned table, produces
//!    the output's change without recomputing unchanged rows.
//!    Select/Project map delta rows element-wise through the session
//!    executor (so delta batches run on the same vectorized kernels as
//!    full runs), Rename passes changes through untouched, Union merges
//!    child patches by offset, hash Join re-probes only delta left rows
//!    against the retained build side, and Aggregate/Pivot maintain group
//!    state with retraction where it is exact (COUNT, and SUM/AVG over
//!    INT columns) and per-group recompute where it is lossy (MIN/MAX,
//!    FLOAT sums). Sort/Distinct/Limit/Unpivot recompute from patched
//!    cached inputs.
//! 3. **Correctness bar** — a refreshed output is **byte-identical** to a
//!    from-scratch rebuild: same rows, same order, and the same first
//!    error. Retained rows can never raise an error (the previous run
//!    already evaluated them with the same expressions), so checking delta
//!    rows in input order reproduces the rebuild's first error; on any
//!    error the plan is *poisoned* and the next refresh falls back to full
//!    re-initialization.
//!
//! Refresh cost is **O(delta · log n)**, not O(n) (DESIGN.md §15):
//! Select positions are maintained by a rank index
//! ([`crate::rank::RankList`] — weight 1 per predicate-passing child
//! row, so a prefix-weight query turns a child position into an output
//! rank), and Aggregate/Pivot group order by a persistent
//! first-occurrence index ([`crate::rank::FirstSeenIndex`]), including
//! group death, revival, and first-occurrence promotion. The output row
//! vector itself absorbs patches lazily, so a refresh that only needs
//! the new length never pays the splice.
//!
//! # Worked example: one insert, one delete, through a grouped plan
//!
//! ```
//! use guava_relational::prelude::*;
//!
//! let schema = Schema::new("visits", vec![
//!     Column::required("id", DataType::Int),
//!     Column::new("site", DataType::Text),
//! ]).unwrap().with_primary_key(&["id"]).unwrap();
//! let mut db = Database::new("clinic");
//! db.create_table(Table::from_rows(schema, vec![
//!     vec![Value::Int(1), Value::text("a")],
//!     vec![Value::Int(2), Value::text("b")],
//!     vec![Value::Int(3), Value::text("a")],
//! ]).unwrap()).unwrap();
//! let mut cat = Catalog::new();
//! cat.insert(db);
//!
//! // Count visits per site; group order = first occurrence: [a, b].
//! let plan = Plan::scan("visits").aggregate(&["site"], vec![Aggregate {
//!     func: AggFunc::CountAll, alias: "n".into(),
//! }]);
//! let exec = Executor::new();
//! let mut dp = DeltaPlan::init(&plan, cat.database("clinic").unwrap(), &exec).unwrap();
//! assert_eq!(dp.len(), 2);
//!
//! // Capture one insert and one delete through the DeltaCatalog. Site
//! // "b" loses its only row (group death); site "c" is born.
//! let mut dc = DeltaCatalog::new(cat);
//! dc.insert("clinic", "visits", vec![Value::Int(4), Value::text("c")]).unwrap();
//! dc.delete_where("clinic", "visits", |r| r[0] == Value::Int(2)).unwrap();
//! let deltas = dc.take_deltas();
//! let mut changes = TableChanges::new();
//! changes.set("visits", deltas.get("clinic", "visits").unwrap().to_change());
//! let cat = dc.into_inner();
//!
//! // Refresh patches the cached state: "b" is deleted at its old rank,
//! // "c" appends at the end — no retained group is recomputed.
//! let db = cat.database("clinic").unwrap();
//! dp.refresh(db, &changes, &exec).unwrap();
//! let out = dp.output().unwrap();
//! assert_eq!(out.rows().iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
//!            vec![Value::text("a"), Value::text("c")]);
//! // Byte-identical to a from-scratch run on the merged state:
//! assert_eq!(out, exec.execute(&plan, db).unwrap());
//! ```

use crate::algebra::{
    aggregate_output_schema, cast_text, check_union_compatible, join_output_schema, keyless,
    pivot_output_schema, pivot_rows, resolve_aggregate_columns, resolve_column, resolve_columns,
    sort_rows, unpivot_output_schema, unpivot_rows, AggAcc, AggFunc, Aggregate, JoinKind, Plan,
};
use crate::database::{Catalog, Database};
use crate::error::{RelError, RelResult};
use crate::exec::Executor;
use crate::expr::Expr;
use crate::rank::{FirstSeenIndex, InsertOutcome, RankList, RemoveOutcome};
use crate::schema::{Column, Schema};
use crate::table::{Row, Table};
use crate::value::{DataType, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Patches: positional edits against a known previous row vector.
// ---------------------------------------------------------------------------

/// A positional edit script against a row vector of known length.
///
/// Positions are **pre-state** ordinals. Applying a patch walks the old
/// rows once: at each old position `i` (and at `i == old_len`, the append
/// point) the rows of the insert group at `i` are emitted first, then the
/// old row itself unless `i` is deleted. A "replace in place" is therefore
/// expressed as delete-at-`i` plus insert-at-`i`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Patch {
    /// Deleted pre-state ordinals, strictly ascending.
    deleted: Vec<usize>,
    /// Insert groups `(position, rows)`, strictly ascending by position;
    /// each group's rows are emitted in order before old row `position`.
    inserted: Vec<(usize, Vec<Row>)>,
}

impl Patch {
    /// Build a patch from raw parts, validating the ordering invariants.
    pub fn new(deleted: Vec<usize>, inserted: Vec<(usize, Vec<Row>)>) -> RelResult<Patch> {
        if !deleted.windows(2).all(|w| w[0] < w[1]) {
            return Err(RelError::Plan(
                "patch deleted ordinals must be strictly ascending".into(),
            ));
        }
        if !inserted.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(RelError::Plan(
                "patch insert positions must be strictly ascending".into(),
            ));
        }
        Ok(Patch { deleted, inserted })
    }

    /// Deleted pre-state ordinals (strictly ascending).
    pub fn deleted(&self) -> &[usize] {
        &self.deleted
    }

    /// Insert groups `(position, rows)` (strictly ascending by position).
    pub fn inserted(&self) -> &[(usize, Vec<Row>)] {
        &self.inserted
    }

    /// True when the patch performs no edit at all.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty() && self.inserted.is_empty()
    }

    /// Number of rows this patch deletes.
    pub fn rows_deleted(&self) -> usize {
        self.deleted.len()
    }

    /// Number of rows this patch inserts.
    pub fn rows_inserted(&self) -> usize {
        self.inserted.iter().map(|(_, rows)| rows.len()).sum()
    }

    /// Whether every position refers into a row vector of `old_len` rows.
    pub fn valid_for(&self, old_len: usize) -> bool {
        self.deleted.last().is_none_or(|&d| d < old_len)
            && self.inserted.last().is_none_or(|&(p, _)| p <= old_len)
    }

    /// Length of the row vector after applying this patch to `old_len` rows.
    pub fn new_len(&self, old_len: usize) -> usize {
        old_len - self.rows_deleted() + self.rows_inserted()
    }

    /// Inserted rows in patch-event order — which is exactly their relative
    /// order in the post-state row vector.
    pub fn new_rows(&self) -> impl Iterator<Item = &Row> {
        self.inserted.iter().flat_map(|(_, rows)| rows.iter())
    }

    /// Apply the edit script to the old rows.
    pub fn apply(&self, old: Vec<Row>) -> Vec<Row> {
        let old_len = old.len();
        debug_assert!(self.valid_for(old_len), "patch out of range");
        let mut out = Vec::with_capacity(self.new_len(old_len));
        let mut del = self.deleted.iter().peekable();
        let mut ins = self.inserted.iter().peekable();
        for (i, row) in old.into_iter().enumerate() {
            if ins.peek().is_some_and(|(p, _)| *p == i) {
                out.extend(ins.next().expect("peeked").1.iter().cloned());
            }
            if del.peek() == Some(&&i) {
                del.next();
            } else {
                out.push(row);
            }
        }
        if ins.peek().is_some_and(|(p, _)| *p == old_len) {
            out.extend(ins.next().expect("peeked").1.iter().cloned());
        }
        out
    }

    /// Apply the edit script in place. Equivalent to [`Patch::apply`] but
    /// reuses the existing allocation when every insert lands at the
    /// append point — the common shape for base-table deltas (scattered
    /// deletes plus appended rows). Arbitrary insert positions fall back
    /// to the rebuilding [`Patch::apply`].
    pub fn apply_in_place(&self, rows: &mut Vec<Row>) {
        let old_len = rows.len();
        debug_assert!(self.valid_for(old_len), "patch out of range");
        if self.inserted.iter().any(|(p, _)| *p < old_len) {
            *rows = self.apply(std::mem::take(rows));
            return;
        }
        if !self.deleted.is_empty() {
            let mut del = self.deleted.iter().peekable();
            let mut i = 0usize;
            rows.retain(|_| {
                let dead = del.peek() == Some(&&i);
                if dead {
                    del.next();
                }
                i += 1;
                !dead
            });
        }
        for (_, grp) in &self.inserted {
            rows.extend(grp.iter().cloned());
        }
    }
}

/// How one table (or one operator's output) changed between two states.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// Byte-identical to the previous state.
    Unchanged,
    /// Positional edit script against the previous state.
    Patch(Patch),
    /// Replaced wholesale; carries the complete new row vector.
    Full(Vec<Row>),
}

impl Change {
    /// True for [`Change::Unchanged`].
    pub fn is_unchanged(&self) -> bool {
        matches!(self, Change::Unchanged)
    }

    /// Apply the change to a cached row vector in place.
    pub fn apply_to(&self, rows: &mut Vec<Row>) {
        match self {
            Change::Unchanged => {}
            Change::Patch(p) => p.apply_in_place(rows),
            Change::Full(new) => *rows = new.clone(),
        }
    }
}

/// Incrementally assembles a [`Patch`]; positions must arrive
/// non-decreasing. Same-position insert groups merge in push order.
#[derive(Default)]
struct PatchBuilder {
    deleted: Vec<usize>,
    inserted: Vec<(usize, Vec<Row>)>,
}

impl PatchBuilder {
    fn delete(&mut self, pos: usize) {
        debug_assert!(self.deleted.last().is_none_or(|&d| d < pos));
        self.deleted.push(pos);
    }

    fn insert(&mut self, pos: usize, row: Row) {
        match self.inserted.last_mut() {
            Some((p, rows)) if *p == pos => rows.push(row),
            last => {
                debug_assert!(last.is_none_or(|(p, _)| *p < pos));
                self.inserted.push((pos, vec![row]));
            }
        }
    }

    fn insert_rows(&mut self, pos: usize, rows: Vec<Row>) {
        for row in rows {
            self.insert(pos, row);
        }
    }

    fn into_change(self) -> Change {
        if self.deleted.is_empty() && self.inserted.is_empty() {
            Change::Unchanged
        } else {
            Change::Patch(Patch {
                deleted: self.deleted,
                inserted: self.inserted,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Captured deltas.
// ---------------------------------------------------------------------------

/// The recorded difference of one table between two capture points.
///
/// `deleted` holds `(pre-state ordinal, row)` pairs in ascending ordinal
/// order; `inserted` holds appended rows in insertion order. The canonical
/// merge ([`TableDelta::apply`]) keeps retained pre-state rows in their
/// original order and appends the inserted rows — updates captured as
/// delete + insert therefore move to the end of the table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDelta {
    /// Row count of the pre-state the ordinals refer to.
    pub pre_len: usize,
    /// Deleted rows as `(pre-state ordinal, row)`, ascending by ordinal.
    pub deleted: Vec<(usize, Row)>,
    /// Rows appended after the retained pre-state rows, in order.
    pub inserted: Vec<Row>,
}

impl TableDelta {
    /// True when the delta records no change.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty() && self.inserted.is_empty()
    }

    /// Total number of row edits (deletes + inserts) recorded.
    pub fn rows_changed(&self) -> usize {
        self.deleted.len() + self.inserted.len()
    }

    /// The canonical deterministic merge: retained pre-state rows in their
    /// original order, then the inserted rows.
    pub fn apply(&self, pre: &[Row]) -> Vec<Row> {
        debug_assert_eq!(pre.len(), self.pre_len, "delta applied to wrong state");
        let dead: HashSet<usize> = self.deleted.iter().map(|&(i, _)| i).collect();
        let mut out = Vec::with_capacity(pre.len() - dead.len() + self.inserted.len());
        for (i, row) in pre.iter().enumerate() {
            if !dead.contains(&i) {
                out.push(row.clone());
            }
        }
        out.extend(self.inserted.iter().cloned());
        out
    }

    /// The delta as a positional [`Change`] over the pre-state: ordinal
    /// deletes plus one insert group at the append point.
    pub fn to_change(&self) -> Change {
        if self.is_empty() {
            return Change::Unchanged;
        }
        let mut inserted = Vec::new();
        if !self.inserted.is_empty() {
            inserted.push((self.pre_len, self.inserted.clone()));
        }
        Change::Patch(Patch {
            deleted: self.deleted.iter().map(|&(i, _)| i).collect(),
            inserted,
        })
    }
}

/// All table deltas captured between two [`DeltaCatalog::take_deltas`]
/// calls, keyed by `(database, table)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSet {
    map: BTreeMap<(String, String), TableDelta>,
}

impl DeltaSet {
    /// An empty delta set ("nothing changed").
    pub fn new() -> DeltaSet {
        DeltaSet::default()
    }

    /// True when no table changed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of changed tables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The delta for one table, if it changed.
    pub fn get(&self, db: &str, table: &str) -> Option<&TableDelta> {
        self.map.get(&(db.to_owned(), table.to_owned()))
    }

    /// Record (or replace) a table's delta.
    pub fn insert(&mut self, db: impl Into<String>, table: impl Into<String>, d: TableDelta) {
        self.map.insert((db.into(), table.into()), d);
    }

    /// Iterate `((database, table), delta)` in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &TableDelta)> {
        self.map.iter()
    }

    /// Total row edits across all tables.
    pub fn total_rows_changed(&self) -> usize {
        self.map.values().map(TableDelta::rows_changed).sum()
    }

    /// Patch a statistics catalog with every table's delta, in `O(rows
    /// changed)` — the incremental-refresh side of the stats lifecycle
    /// (DESIGN.md §17): row counts and null fractions stay exact,
    /// min/max/NDV widen from inserted rows. Tables absent from the
    /// catalog are skipped.
    pub fn patch_stats(&self, stats: &mut crate::stats::StatsCatalog) {
        stats.patch_all(self);
    }
}

/// Per-table change map for one [`DeltaPlan::refresh`] call, keyed by table
/// name within the plan's source database. Tables without an entry are
/// claimed unchanged (the plan still cross-checks schema and length).
#[derive(Debug, Clone, Default)]
pub struct TableChanges {
    map: HashMap<String, Change>,
}

impl TableChanges {
    /// Empty map: every scanned table is claimed unchanged.
    pub fn new() -> TableChanges {
        TableChanges::default()
    }

    /// Record how `table` changed.
    pub fn set(&mut self, table: impl Into<String>, change: Change) {
        self.map.insert(table.into(), change);
    }

    /// The recorded change for `table`, if any.
    pub fn get(&self, table: &str) -> Option<&Change> {
        self.map.get(table)
    }
}

/// Order-sensitive fingerprint of a table's schema and rows. Equal tables
/// always produce equal fingerprints; the workflow cache uses it as a
/// cheap pre-filter and confirms hits with a full comparison, so hash
/// collisions can never break the byte-identical refresh bar.
pub fn table_fingerprint(t: &Table) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.schema().to_string().hash(&mut h);
    t.len().hash(&mut h);
    for row in t.rows() {
        row.hash(&mut h);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Change capture.
// ---------------------------------------------------------------------------

/// Bookkeeping for one mutated table: an immutable pre-state snapshot plus
/// the ordinals of pre-state rows still live and the rows inserted since.
/// The table in the wrapped catalog always equals
/// `retained rows (in order) ++ inserted rows` — the canonical merge.
#[derive(Clone)]
struct TrackedTable {
    pre_rows: Arc<Vec<Row>>,
    retained: Vec<usize>,
    inserted: Vec<Row>,
}

/// A change-capturing wrapper around a [`Catalog`].
///
/// All mutations must go through [`DeltaCatalog::insert`],
/// [`DeltaCatalog::delete_where`], and [`DeltaCatalog::update_where`]; each
/// is **atomic** (validation errors leave both the catalog and the recorded
/// delta untouched) and maintains the canonical merge order — in
/// particular, an update is captured as delete + re-insert, so the updated
/// row moves to the end of its table. [`DeltaCatalog::take_deltas`] drains
/// the recorded per-table deltas and starts a fresh capture window.
///
/// Reading through [`DeltaCatalog::catalog`] is always safe;
/// [`DeltaCatalog::catalog_mut`] bypasses capture and is only sound for
/// databases the capture window has not touched (e.g. ETL target
/// databases).
pub struct DeltaCatalog {
    catalog: Catalog,
    tracked: BTreeMap<(String, String), TrackedTable>,
}

impl DeltaCatalog {
    /// Wrap a catalog and start an empty capture window.
    pub fn new(catalog: Catalog) -> DeltaCatalog {
        DeltaCatalog {
            catalog,
            tracked: BTreeMap::new(),
        }
    }

    /// Read-only view of the wrapped catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Escape hatch for mutations that must not be captured (ETL loads
    /// into target databases). Mutating a table the current capture window
    /// already tracks makes the recorded delta stale — don't.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Unwrap, discarding any un-taken deltas.
    pub fn into_inner(self) -> Catalog {
        self.catalog
    }

    /// Snapshot `db.table` on first touch in this capture window.
    fn touch(&mut self, db: &str, table: &str) -> RelResult<()> {
        let key = (db.to_owned(), table.to_owned());
        if let std::collections::btree_map::Entry::Vacant(e) = self.tracked.entry(key) {
            let t = self.catalog.database(db)?.table(table)?;
            e.insert(TrackedTable {
                retained: (0..t.len()).collect(),
                pre_rows: t.shared_rows(),
                inserted: Vec::new(),
            });
        }
        Ok(())
    }

    /// Current live rows of a tracked table (retained ++ inserted).
    fn live_rows(tr: &TrackedTable) -> Vec<Row> {
        let mut rows: Vec<Row> = tr
            .retained
            .iter()
            .map(|&i| tr.pre_rows[i].clone())
            .collect();
        rows.extend(tr.inserted.iter().cloned());
        rows
    }

    /// Rebuild the catalog table from tracked state, revalidating the
    /// primary key. Called with candidate bookkeeping *before* committing
    /// it, so a duplicate-key error leaves everything unchanged.
    /// `pure_append` marks commits that only appended rows since the last
    /// one: the replaced table's sealed segment prefix still describes the
    /// new table's leading rows, so it is carried over (and the row-form
    /// delta tail folded once it outgrows the compaction threshold)
    /// instead of being rebuilt from scratch on the next scan.
    fn commit(
        &mut self,
        db: &str,
        table: &str,
        tr: TrackedTable,
        pure_append: bool,
    ) -> RelResult<()> {
        let t = {
            let old = self.catalog.database(db)?.table(table)?;
            let mut t = Table::from_validated(old.schema().clone(), Self::live_rows(&tr))?;
            if pure_append && t.adopt_segments(old) {
                t.compact_segments();
            }
            t
        };
        self.catalog.database_mut(db)?.put_table(t);
        self.tracked.insert((db.to_owned(), table.to_owned()), tr);
        Ok(())
    }

    /// Append one row, validating it against the table schema (including
    /// primary-key uniqueness). Atomic: on error nothing changes.
    pub fn insert(&mut self, db: &str, table: &str, row: Row) -> RelResult<()> {
        self.touch(db, table)?;
        let schema = self.catalog.database(db)?.table(table)?.schema().clone();
        schema.check_row(&row)?;
        let mut tr = self.tracked[&(db.to_owned(), table.to_owned())].clone();
        tr.inserted.push(row);
        self.commit(db, table, tr, true)
    }

    /// Delete every live row matching `pred`; returns the count removed.
    pub fn delete_where(
        &mut self,
        db: &str,
        table: &str,
        pred: impl Fn(&Row) -> bool,
    ) -> RelResult<usize> {
        self.touch(db, table)?;
        let mut tr = self.tracked[&(db.to_owned(), table.to_owned())].clone();
        let before = tr.retained.len() + tr.inserted.len();
        tr.retained.retain(|&i| !pred(&tr.pre_rows[i]));
        tr.inserted.retain(|r| !pred(r));
        let removed = before - tr.retained.len() - tr.inserted.len();
        self.commit(db, table, tr, false)?;
        Ok(removed)
    }

    /// Update every live row matching `pred` by applying `f` to a copy,
    /// captured as delete + re-insert: updated rows move to the end of the
    /// table in their previous relative order (the canonical merge). This
    /// deliberately differs from [`Table::update_where`], which edits in
    /// place and records nothing. Atomic; returns the count updated.
    pub fn update_where(
        &mut self,
        db: &str,
        table: &str,
        pred: impl Fn(&Row) -> bool,
        mut f: impl FnMut(&mut Row),
    ) -> RelResult<usize> {
        self.touch(db, table)?;
        let schema = self.catalog.database(db)?.table(table)?.schema().clone();
        let tr = &self.tracked[&(db.to_owned(), table.to_owned())];
        let mut moved: Vec<Row> = Vec::new();
        let mut retained = Vec::with_capacity(tr.retained.len());
        for &i in &tr.retained {
            if pred(&tr.pre_rows[i]) {
                let mut r = tr.pre_rows[i].clone();
                f(&mut r);
                schema.check_row(&r)?;
                moved.push(r);
            } else {
                retained.push(i);
            }
        }
        let mut inserted = Vec::with_capacity(tr.inserted.len());
        for r in &tr.inserted {
            if pred(r) {
                let mut r = r.clone();
                f(&mut r);
                schema.check_row(&r)?;
                moved.push(r);
            } else {
                inserted.push(r.clone());
            }
        }
        let count = moved.len();
        inserted.extend(moved);
        let tr = TrackedTable {
            pre_rows: tr.pre_rows.clone(),
            retained,
            inserted,
        };
        self.commit(db, table, tr, false)?;
        Ok(count)
    }

    /// Drain the capture window: every touched table that actually changed
    /// yields its [`TableDelta`]; tracking restarts empty, so the next
    /// mutation snapshots the then-current state.
    pub fn take_deltas(&mut self) -> DeltaSet {
        let mut set = DeltaSet::default();
        for ((db, table), tr) in std::mem::take(&mut self.tracked) {
            let live: HashSet<usize> = tr.retained.iter().copied().collect();
            let deleted: Vec<(usize, Row)> = (0..tr.pre_rows.len())
                .filter(|i| !live.contains(i))
                .map(|i| (i, tr.pre_rows[i].clone()))
                .collect();
            let delta = TableDelta {
                pre_len: tr.pre_rows.len(),
                deleted,
                inserted: tr.inserted,
            };
            if !delta.is_empty() {
                set.insert(db, table, delta);
            }
        }
        set
    }
}

// ---------------------------------------------------------------------------
// Differential plan evaluation.
// ---------------------------------------------------------------------------

/// The result of pushing one input [`Patch`] through a
/// [`FirstSeenIndex`]: which groups were touched, the output rank each of
/// them held before the edit, and whether surviving-group order can have
/// changed. Shared by the Aggregate and Pivot differential rules.
struct FirstSeenPatch {
    /// Touched group keys (keys of deleted and inserted rows), deduplicated
    /// in first-touch order.
    affected: Vec<Vec<Value>>,
    /// Pre-patch output rank of every affected key that existed.
    old_rank: HashMap<Vec<Value>, usize>,
    /// Pre-patch group count (the old output length).
    old_group_count: usize,
    /// Keys whose last occurrence vanished at some point during the patch;
    /// if such a key is live again afterwards it was *revived* and must
    /// re-enter output order at the end, like a rebuild would place it.
    died_once: HashSet<Vec<Value>>,
    /// A surviving group's first occurrence moved (deleted-first promotion
    /// or an insert in front of it): relative survivor order is no longer
    /// guaranteed and the caller must emit [`Change::Full`].
    order_broken: bool,
    /// Content of the deleted pre-state rows, in ascending ordinal order
    /// (captured before the index mutates, for accumulator retraction).
    deleted_rows: Vec<Row>,
}

impl FirstSeenPatch {
    /// Apply `p` to `idx`, classifying every group-order event on the way.
    /// `O(delta · log n)` plus promotion elections (see
    /// [`FirstSeenIndex::remove`]).
    fn apply(idx: &mut FirstSeenIndex, p: &Patch) -> FirstSeenPatch {
        // Pass A (read-only, pre-state coordinates): capture deleted row
        // content, the affected key set, and each affected key's old rank.
        let deleted_rows: Vec<Row> = p.deleted().iter().map(|&i| idx.row(i).clone()).collect();
        let mut affected: Vec<Vec<Value>> = Vec::new();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for r in deleted_rows.iter().chain(p.new_rows()) {
            let key = idx.key_of(r);
            if seen.insert(key.clone()) {
                affected.push(key);
            }
        }
        let mut old_rank = HashMap::new();
        for key in &affected {
            if let Some(rk) = idx.rank_of(key) {
                old_rank.insert(key.clone(), rk);
            }
        }
        let old_group_count = idx.group_count();
        // Pass B (mutation): walk the patch events in *descending* position
        // order so every event applies at a still-valid pre-state ordinal.
        // At equal positions the delete goes first: the insert group at
        // `i` must land before old row `i`'s slot, which only works if row
        // `i` has already been taken out.
        let mut died_once = HashSet::new();
        let mut order_broken = false;
        let mut note = |key: &[Value], died_once: &HashSet<Vec<Value>>| {
            // A promotion only breaks emission order when it moves the
            // anchor of a *continuously surviving* group; born or revived
            // groups are re-ranked from final state anyway.
            if old_rank.contains_key(key) && !died_once.contains(key) {
                order_broken = true;
            }
        };
        let mut di = p.deleted().len();
        let mut gi = p.inserted().len();
        while di > 0 || gi > 0 {
            let take_delete = di > 0 && (gi == 0 || p.deleted()[di - 1] >= p.inserted()[gi - 1].0);
            if take_delete {
                di -= 1;
                let (row, outcome) = idx.remove(p.deleted()[di]);
                match outcome {
                    RemoveOutcome::Died => {
                        died_once.insert(idx.key_of(&row));
                    }
                    RemoveOutcome::Promoted => note(&idx.key_of(&row), &died_once),
                    RemoveOutcome::Later => {}
                }
            } else {
                gi -= 1;
                let (pos, rows) = &p.inserted()[gi];
                for (k, r) in rows.iter().enumerate() {
                    let key = idx.key_of(r);
                    match idx.insert(pos + k, r.clone()) {
                        InsertOutcome::Promoted => note(&key, &died_once),
                        InsertOutcome::NewKey | InsertOutcome::Later => {}
                    }
                }
            }
        }
        FirstSeenPatch {
            affected,
            old_rank,
            old_group_count,
            died_once,
            order_broken,
            deleted_rows,
        }
    }

    /// Emit the output patch in pre-state output coordinates: deaths
    /// delete, surviving affected groups replace in place, and born or
    /// revived groups append at the old output end in their new rank
    /// order. Returns `None` when a rank patch cannot describe the edit —
    /// survivor order broke, or a (re)born group landed *between*
    /// survivors — and the caller must fall back to [`Change::Full`].
    fn emit(
        &self,
        idx: &FirstSeenIndex,
        mut make_row: impl FnMut(&[Value]) -> Row,
    ) -> Option<Patch> {
        if self.order_broken {
            return None;
        }
        let mut vacated: Vec<(usize, Option<Vec<Value>>)> = Vec::new();
        let mut born: Vec<(usize, Vec<Value>)> = Vec::new();
        for key in &self.affected {
            let old = self.old_rank.get(key).copied();
            let live = idx.contains(key);
            match (old, live) {
                (Some(r), true) if !self.died_once.contains(key) => {
                    vacated.push((r, Some(key.clone())));
                }
                (Some(r), true) => {
                    // Died and revived within one patch: vacate the old
                    // slot and re-enter at the end.
                    vacated.push((r, None));
                    born.push((idx.rank_of(key).expect("live"), key.clone()));
                }
                (Some(r), false) => vacated.push((r, None)),
                (None, true) => born.push((idx.rank_of(key).expect("live"), key.clone())),
                (None, false) => {} // appeared and vanished within the patch
            }
        }
        // Every born group must rank after every survivor, or the patch
        // cannot express the reordering.
        let slots_vacated = vacated.iter().filter(|(_, k)| k.is_none()).count();
        let survivors = self.old_group_count - slots_vacated;
        if born.iter().any(|(rank, _)| *rank < survivors) {
            return None;
        }
        vacated.sort_unstable_by_key(|(r, _)| *r);
        born.sort_unstable_by_key(|(r, _)| *r);
        let mut pb = PatchBuilder::default();
        for (r, key) in vacated {
            pb.delete(r);
            if let Some(key) = key {
                pb.insert(r, make_row(&key));
            }
        }
        for (_, key) in born {
            pb.insert(self.old_group_count, make_row(&key));
        }
        Some(match pb.into_change() {
            Change::Patch(p) => p,
            _ => Patch::default(),
        })
    }
}

/// A cached row vector that absorbs [`Change`]s lazily: patches are queued
/// and the length tracked in `O(1)`, so a refresh that only needs the new
/// length (or is followed by more patches) never pays the `O(n)` splice.
/// The queue is drained on [`LazyRows::rows`] access (and bounded, so
/// repeated refreshes without reads cannot accumulate unbounded work).
#[derive(Clone, Default)]
struct LazyRows {
    rows: Vec<Row>,
    pending: Vec<Patch>,
    len: usize,
}

/// Queue at most this many patches before folding them into `rows`.
const LAZY_FLUSH: usize = 32;

impl LazyRows {
    fn new(rows: Vec<Row>) -> LazyRows {
        LazyRows {
            len: rows.len(),
            rows,
            pending: Vec::new(),
        }
    }

    /// Post-change length, `O(1)`.
    fn len(&self) -> usize {
        self.len
    }

    /// Absorb one change. `O(1)` for patches (amortized; queued), `O(n)`
    /// for wholesale replacement.
    fn push(&mut self, change: &Change) {
        match change {
            Change::Unchanged => {}
            Change::Patch(p) => {
                self.len = p.new_len(self.len);
                self.pending.push(p.clone());
                if self.pending.len() >= LAZY_FLUSH {
                    self.flush();
                }
            }
            Change::Full(rows) => {
                self.pending.clear();
                self.rows = rows.clone();
                self.len = rows.len();
            }
        }
    }

    fn flush(&mut self) {
        for p in self.pending.drain(..) {
            p.apply_in_place(&mut self.rows);
        }
    }

    /// The materialized current rows (drains the queue).
    fn rows(&mut self) -> &Vec<Row> {
        self.flush();
        &self.rows
    }

    /// Current rows without mutable access: clones the base vector and
    /// replays any queued patches onto the clone.
    fn to_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        for p in &self.pending {
            p.apply_in_place(&mut rows);
        }
        rows
    }
}

/// Evaluate `predicate` over `rows` in one executor batch, returning a
/// pass/fail flag per row. A synthetic INT ordinal column (named to avoid
/// collisions) rides through the Select so surviving ordinals identify the
/// passing rows; predicate errors surface in row order, exactly as a full
/// evaluation over the same rows would report them.
fn select_batch(
    exec: &Executor,
    in_schema: &Schema,
    predicate: &Expr,
    rows: Vec<Row>,
) -> RelResult<Vec<bool>> {
    let n = rows.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut ord = "__delta_ord".to_owned();
    while in_schema.index_of(&ord).is_some() {
        ord.push('_');
    }
    let mut cols = in_schema.columns().to_vec();
    cols.push(Column::new(ord, DataType::Int));
    let schema = Schema::new(in_schema.name.clone(), cols)?;
    let rows: Vec<Row> = rows
        .into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            r.push(Value::Int(i as i64));
            r
        })
        .collect();
    let plan = Plan::Values { schema, rows }.select(predicate.clone());
    let out = exec.execute(&plan, &Database::new("__delta_batch__"))?;
    let mut passed = vec![false; n];
    for r in out.rows() {
        if let Some(Value::Int(i)) = r.last() {
            passed[*i as usize] = true;
        }
    }
    Ok(passed)
}

/// Evaluate projection expressions over `rows` in one executor batch. Row
/// and in-row column error order match a full evaluation over these rows.
fn project_batch(
    exec: &Executor,
    in_schema: &Schema,
    columns: &[(String, Expr)],
    rows: Vec<Row>,
) -> RelResult<Vec<Row>> {
    if rows.is_empty() {
        return Ok(Vec::new());
    }
    let plan = Plan::Values {
        schema: in_schema.clone(),
        rows,
    }
    .project(columns.to_vec());
    Ok(exec
        .execute(&plan, &Database::new("__delta_batch__"))?
        .into_rows())
}

/// Per-group accumulators plus the live row count that decides group death.
#[derive(Clone)]
struct GroupState {
    accs: Vec<AggAcc>,
    rows: i64,
}

/// Which recompute kernel a cache-and-recompute node runs.
#[derive(Clone)]
enum RecomputeKernel {
    Sort {
        idxs: Vec<usize>,
    },
    Distinct,
    Limit {
        n: usize,
    },
    Unpivot {
        key_idx: Vec<usize>,
        data_idx: Vec<usize>,
    },
}

impl RecomputeKernel {
    fn run(&self, in_schema: &Schema, rows: &[Row]) -> Vec<Row> {
        match self {
            RecomputeKernel::Sort { idxs } => {
                let mut out = rows.to_vec();
                sort_rows(&mut out, idxs);
                out
            }
            RecomputeKernel::Distinct => {
                let mut seen = HashSet::new();
                rows.iter()
                    .filter(|r| seen.insert((*r).clone()))
                    .cloned()
                    .collect()
            }
            RecomputeKernel::Limit { n } => rows.iter().take(*n).cloned().collect(),
            RecomputeKernel::Unpivot { key_idx, data_idx } => {
                unpivot_rows(in_schema, rows, key_idx, data_idx)
            }
        }
    }
}

/// One operator of a [`DeltaPlan`], holding whatever cached state its
/// differential rule needs. Mirrors [`Plan`] node for node.
#[derive(Clone)]
enum DNode {
    Scan {
        table: String,
        schema: Schema,
        len: usize,
    },
    Values,
    Select {
        input: Box<DNode>,
        in_schema: Schema,
        predicate: Expr,
        /// One entry per child row; weight 1 marks rows that pass the
        /// predicate, so `weight_before(i)` is child row `i`'s output rank
        /// in `O(log n)` and patch events splice in `O(log n)` each.
        lineage: RankList<()>,
    },
    Project {
        input: Box<DNode>,
        in_schema: Schema,
        columns: Vec<(String, Expr)>,
    },
    Rename {
        input: Box<DNode>,
    },
    Union {
        inputs: Vec<DNode>,
        /// Per-child cached rows; all-patch refreshes only read lengths,
        /// so the splice cost is deferred until a child is materialized.
        child_rows: Vec<LazyRows>,
        schema: Schema,
    },
    Join {
        left: Box<DNode>,
        right: Box<DNode>,
        left_rows: Vec<Row>,
        right_rows: Vec<Row>,
        /// Build-side index: join key → right row ordinals, ascending.
        index: HashMap<Vec<Value>, Vec<usize>>,
        /// Output rows produced per left row (prefix sums give ranges).
        out_counts: Vec<usize>,
        l_idx: Vec<usize>,
        r_idx: Vec<usize>,
        r_arity: usize,
        kind: JoinKind,
    },
    Aggregate {
        input: Box<DNode>,
        /// Input rows plus persistent first-occurrence tracking: group
        /// output order is read from the index instead of a full
        /// first-seen rescan per refresh.
        rows_idx: FirstSeenIndex,
        groups: HashMap<Vec<Value>, GroupState>,
        g_idx: Vec<usize>,
        agg_idx: Vec<Option<usize>>,
        aggregates: Vec<Aggregate>,
        /// All aggregates invert exactly under retraction (COUNT, or
        /// SUM/AVG over an INT column). Otherwise affected groups recompute.
        retractable: bool,
        global: bool,
        /// Output schema, kept to validate emitted rows exactly where the
        /// rebuild's `from_rows` would (e.g. SUM over a TEXT column emits
        /// INT into a TEXT-typed output column and must fail here too).
        schema: Schema,
    },
    Pivot {
        input: Box<DNode>,
        /// Input rows with first-occurrence tracking over the entity key
        /// columns (wide-row output order is entity first-seen order).
        rows_idx: FirstSeenIndex,
        key_idx: Vec<usize>,
        attr_idx: usize,
        val_idx: usize,
        attrs: Vec<(String, DataType)>,
    },
    Recompute {
        input: Box<DNode>,
        in_schema: Schema,
        in_rows: Vec<Row>,
        kernel: RecomputeKernel,
    },
}

/// Group key of a row under the GROUP BY columns.
fn row_key(row: &Row, idx: &[usize]) -> Vec<Value> {
    idx.iter().map(|&i| row[i].clone()).collect()
}

/// Fresh accumulators for one group.
fn new_group(n_aggs: usize) -> GroupState {
    GroupState {
        accs: vec![AggAcc::default(); n_aggs],
        rows: 0,
    }
}

/// Fold one row into grouped aggregate state.
fn agg_fold(
    groups: &mut HashMap<Vec<Value>, GroupState>,
    row: &Row,
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    n_aggs: usize,
) {
    let st = groups
        .entry(row_key(row, g_idx))
        .or_insert_with(|| new_group(n_aggs));
    for (idx, acc) in agg_idx.iter().zip(st.accs.iter_mut()) {
        acc.update(*idx, row);
    }
    st.rows += 1;
}

/// Build grouped state from scratch (output order lives in the
/// [`FirstSeenIndex`], not here).
fn agg_build(
    rows: &[Row],
    g_idx: &[usize],
    agg_idx: &[Option<usize>],
    n_aggs: usize,
    global: bool,
) -> HashMap<Vec<Value>, GroupState> {
    let mut groups = HashMap::new();
    if global {
        groups.insert(Vec::new(), new_group(n_aggs));
    }
    for row in rows {
        agg_fold(&mut groups, row, g_idx, agg_idx, n_aggs);
    }
    groups
}

/// Output row for one group: key values then finished aggregates.
fn agg_row(key: &[Value], st: &GroupState, aggregates: &[Aggregate]) -> Row {
    let mut row = key.to_vec();
    for (a, acc) in aggregates.iter().zip(&st.accs) {
        row.push(acc.clone().finish(&a.func));
    }
    row
}

/// All output rows in group order, read off the first-occurrence index
/// (`O(groups · log n)` — zero-weight subtrees are skipped).
fn agg_emit(
    idx: &FirstSeenIndex,
    groups: &HashMap<Vec<Value>, GroupState>,
    aggregates: &[Aggregate],
    global: bool,
) -> Vec<Row> {
    if global {
        return vec![agg_row(&[], &groups[&Vec::new()], aggregates)];
    }
    idx.first_rows_in_order()
        .map(|first| {
            let k = idx.key_of(first);
            agg_row(&k, &groups[&k], aggregates)
        })
        .collect()
}

/// Validate one pivot input row exactly as [`pivot_rows`] would: the
/// attribute cell must be text, and a non-null value for a requested
/// attribute must cast to the attribute's declared type.
fn check_pivot_row(
    row: &Row,
    attr_idx: usize,
    val_idx: usize,
    attr_pos: &HashMap<&str, usize>,
    attrs: &[(String, DataType)],
) -> RelResult<()> {
    let attr = match &row[attr_idx] {
        Value::Text(a) => a.as_str(),
        other => {
            return Err(RelError::Eval(format!(
                "pivot attribute column holds non-text value {other}"
            )))
        }
    };
    if let Some(&pos) = attr_pos.get(attr) {
        match &row[val_idx] {
            Value::Null => {}
            Value::Text(t) => {
                cast_text(t, attrs[pos].1)?;
            }
            other => {
                cast_text(&other.to_string(), attrs[pos].1)?;
            }
        }
    }
    Ok(())
}

/// Build the hash-join build-side index over the right rows.
fn build_join_index(right_rows: &[Row], r_idx: &[usize]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in right_rows.iter().enumerate() {
        let key = row_key(row, r_idx);
        if key.iter().any(Value::is_null) {
            continue;
        }
        index.entry(key).or_default().push(i);
    }
    index
}

/// Probe one left row against the build side, mirroring the interpreter's
/// join kernel: NULL keys never match, matches emit in right-row order,
/// and a LEFT join pads unmatched probes with NULLs.
fn probe_left(
    lrow: &Row,
    l_idx: &[usize],
    index: &HashMap<Vec<Value>, Vec<usize>>,
    right_rows: &[Row],
    r_arity: usize,
    kind: JoinKind,
) -> Vec<Row> {
    let key = row_key(lrow, l_idx);
    let matches = if key.iter().any(Value::is_null) {
        None
    } else {
        index.get(&key)
    };
    match matches {
        Some(idxs) => idxs
            .iter()
            .map(|&ri| {
                let mut row = Vec::with_capacity(lrow.len() + r_arity);
                row.extend(lrow.iter().cloned());
                row.extend(right_rows[ri].iter().cloned());
                row
            })
            .collect(),
        None if kind == JoinKind::Left => {
            let mut row = Vec::with_capacity(lrow.len() + r_arity);
            row.extend(lrow.iter().cloned());
            row.extend(std::iter::repeat_n(Value::Null, r_arity));
            vec![row]
        }
        None => Vec::new(),
    }
}

impl DNode {
    /// Evaluate `plan` bottom-up, caching per-operator state. Returns the
    /// node, its exact output schema, and its output rows — byte-identical
    /// to what the interpreter/executor produce (binding errors, row
    /// errors, and validation errors surface in the same order).
    fn init(plan: &Plan, db: &Database, exec: &Executor) -> RelResult<(DNode, Schema, Vec<Row>)> {
        match plan {
            Plan::Scan(name) => {
                let t = db.table(name)?;
                Ok((
                    DNode::Scan {
                        table: name.clone(),
                        schema: t.schema().clone(),
                        len: t.len(),
                    },
                    t.schema().clone(),
                    t.rows().to_vec(),
                ))
            }
            Plan::Values { schema, rows } => {
                let t = Table::from_rows(schema.clone(), rows.clone())?;
                let schema = t.schema().clone();
                Ok((DNode::Values, schema, t.into_rows()))
            }
            Plan::Select { input, predicate } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = keyless(cs);
                let passed = select_batch(exec, &schema, predicate, crows.clone())?;
                let mut out = Vec::new();
                for (i, r) in crows.into_iter().enumerate() {
                    if passed[i] {
                        out.push(r);
                    }
                }
                let (lineage, _) =
                    RankList::from_entries(passed.iter().map(|&b| ((), u64::from(b))));
                Ok((
                    DNode::Select {
                        input: Box::new(child),
                        in_schema: schema.clone(),
                        predicate: predicate.clone(),
                        lineage,
                    },
                    schema,
                    out,
                ))
            }
            Plan::Project { input, columns } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = crate::algebra::project_output_schema(&cs, columns)?;
                let in_schema = keyless(cs);
                let out = project_batch(exec, &in_schema, columns, crows)?;
                Ok((
                    DNode::Project {
                        input: Box::new(child),
                        in_schema,
                        columns: columns.clone(),
                    },
                    schema,
                    out,
                ))
            }
            Plan::Rename {
                input,
                table,
                columns,
            } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = crate::algebra::rename_output_schema(&cs, table.as_deref(), columns)?;
                Ok((
                    DNode::Rename {
                        input: Box::new(child),
                    },
                    schema,
                    crows,
                ))
            }
            Plan::Union { inputs } => {
                let mut iter = inputs.iter();
                let first = iter
                    .next()
                    .ok_or_else(|| RelError::Plan("union of zero inputs".into()))?;
                let (n0, s0, r0) = DNode::init(first, db, exec)?;
                let schema = keyless(s0);
                let mut nodes = vec![n0];
                let mut child_rows = vec![r0];
                for p in iter {
                    let (n, s, r) = DNode::init(p, db, exec)?;
                    check_union_compatible(&schema, &s)?;
                    nodes.push(n);
                    child_rows.push(r);
                }
                // The union schema keeps child 0's nullability; rows of the
                // other children are the only operator outputs that can
                // fail output validation, exactly as `from_rows` reports.
                for rows in child_rows.iter().skip(1) {
                    for r in rows {
                        schema.check_row(r)?;
                    }
                }
                let out: Vec<Row> = child_rows.iter().flat_map(|r| r.iter().cloned()).collect();
                Ok((
                    DNode::Union {
                        inputs: nodes,
                        child_rows: child_rows.into_iter().map(LazyRows::new).collect(),
                        schema: schema.clone(),
                    },
                    schema,
                    out,
                ))
            }
            Plan::Join {
                left,
                right,
                on,
                kind,
            } => {
                let (nl, ls, left_rows) = DNode::init(left, db, exec)?;
                let (nr, rs, right_rows) = DNode::init(right, db, exec)?;
                let l_idx = resolve_columns(&ls, on.iter().map(|(l, _)| l))?;
                let r_idx = resolve_columns(&rs, on.iter().map(|(_, r)| r))?;
                let schema = join_output_schema(&ls, &rs, *kind)?;
                let r_arity = rs.arity();
                let index = build_join_index(&right_rows, &r_idx);
                let mut out = Vec::new();
                let mut out_counts = Vec::with_capacity(left_rows.len());
                for lrow in &left_rows {
                    let outs = probe_left(lrow, &l_idx, &index, &right_rows, r_arity, *kind);
                    out_counts.push(outs.len());
                    out.extend(outs);
                }
                Ok((
                    DNode::Join {
                        left: Box::new(nl),
                        right: Box::new(nr),
                        left_rows,
                        right_rows,
                        index,
                        out_counts,
                        l_idx,
                        r_idx,
                        r_arity,
                        kind: *kind,
                    },
                    schema,
                    out,
                ))
            }
            Plan::AggregateBy {
                input,
                group_by,
                aggregates,
            } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let g_idx = resolve_columns(&cs, group_by)?;
                let agg_idx = resolve_aggregate_columns(&cs, aggregates)?;
                let schema = aggregate_output_schema(&cs, &g_idx, &agg_idx, aggregates)?;
                let global = g_idx.is_empty();
                let retractable = aggregates
                    .iter()
                    .zip(&agg_idx)
                    .all(|(a, idx)| match a.func {
                        AggFunc::CountAll | AggFunc::Count(_) => true,
                        AggFunc::Sum(_) | AggFunc::Avg(_) => {
                            cs.columns()[idx.expect("column agg")].data_type == DataType::Int
                        }
                        AggFunc::Min(_) | AggFunc::Max(_) => false,
                    });
                let groups = agg_build(&crows, &g_idx, &agg_idx, aggregates.len(), global);
                let rows_idx = FirstSeenIndex::from_rows(crows, g_idx.clone());
                let out = agg_emit(&rows_idx, &groups, aggregates, global);
                for r in &out {
                    schema.check_row(r)?;
                }
                Ok((
                    DNode::Aggregate {
                        input: Box::new(child),
                        rows_idx,
                        groups,
                        g_idx,
                        agg_idx,
                        aggregates: aggregates.clone(),
                        retractable,
                        global,
                        schema: schema.clone(),
                    },
                    schema,
                    out,
                ))
            }
            Plan::Pivot {
                input,
                keys,
                attr_col,
                val_col,
                attrs,
            } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let key_idx = resolve_columns(&cs, keys)?;
                let attr_idx = resolve_column(&cs, attr_col)?;
                let val_idx = resolve_column(&cs, val_col)?;
                let schema = pivot_output_schema(&cs, &key_idx, attrs)?;
                let out = pivot_rows(&crows, &key_idx, attr_idx, val_idx, attrs)?;
                let rows_idx = FirstSeenIndex::from_rows(crows, key_idx.clone());
                Ok((
                    DNode::Pivot {
                        input: Box::new(child),
                        rows_idx,
                        key_idx,
                        attr_idx,
                        val_idx,
                        attrs: attrs.clone(),
                    },
                    schema,
                    out,
                ))
            }
            Plan::Sort { input, by } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = keyless(cs);
                let idxs = resolve_columns(&schema, by)?;
                let kernel = RecomputeKernel::Sort { idxs };
                let out = kernel.run(&schema, &crows);
                Ok((
                    DNode::Recompute {
                        input: Box::new(child),
                        in_schema: schema.clone(),
                        in_rows: crows,
                        kernel,
                    },
                    schema,
                    out,
                ))
            }
            Plan::Distinct { input } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = keyless(cs);
                let kernel = RecomputeKernel::Distinct;
                let out = kernel.run(&schema, &crows);
                Ok((
                    DNode::Recompute {
                        input: Box::new(child),
                        in_schema: schema.clone(),
                        in_rows: crows,
                        kernel,
                    },
                    schema,
                    out,
                ))
            }
            Plan::Limit { input, n } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let schema = keyless(cs);
                let kernel = RecomputeKernel::Limit { n: *n };
                let out = kernel.run(&schema, &crows);
                Ok((
                    DNode::Recompute {
                        input: Box::new(child),
                        in_schema: schema.clone(),
                        in_rows: crows,
                        kernel,
                    },
                    schema,
                    out,
                ))
            }
            Plan::Unpivot {
                input,
                keys,
                attr_col,
                val_col,
            } => {
                let (child, cs, crows) = DNode::init(input, db, exec)?;
                let key_idx = resolve_columns(&cs, keys)?;
                let data_idx: Vec<usize> =
                    (0..cs.arity()).filter(|i| !key_idx.contains(i)).collect();
                let schema = unpivot_output_schema(&cs, &key_idx, attr_col, val_col)?;
                let kernel = RecomputeKernel::Unpivot { key_idx, data_idx };
                let out = kernel.run(&cs, &crows);
                Ok((
                    DNode::Recompute {
                        input: Box::new(child),
                        in_schema: cs,
                        in_rows: crows,
                        kernel,
                    },
                    schema,
                    out,
                ))
            }
        }
    }

    /// True when any scanned table's current schema differs from the one
    /// this node tree was initialized against (bindings would be stale).
    fn scans_stale(&self, db: &Database) -> bool {
        match self {
            DNode::Scan { table, schema, .. } => db
                .table(table)
                .map(|t| t.schema() != schema)
                .unwrap_or(false),
            DNode::Values => false,
            DNode::Select { input, .. }
            | DNode::Project { input, .. }
            | DNode::Rename { input }
            | DNode::Aggregate { input, .. }
            | DNode::Pivot { input, .. }
            | DNode::Recompute { input, .. } => input.scans_stale(db),
            DNode::Union { inputs, .. } => inputs.iter().any(|n| n.scans_stale(db)),
            DNode::Join { left, right, .. } => left.scans_stale(db) || right.scans_stale(db),
        }
    }

    /// Propagate input changes through this operator, updating cached
    /// state and returning how this node's output changed. Children
    /// refresh left-to-right before their parent (the interpreter's
    /// evaluation order), so errors surface in rebuild order.
    fn refresh(
        &mut self,
        db: &Database,
        changes: &TableChanges,
        exec: &Executor,
    ) -> RelResult<Change> {
        match self {
            DNode::Scan { table, schema, len } => {
                let t = db.table(table)?;
                debug_assert_eq!(t.schema(), schema, "pre-checked by DeltaPlan::refresh");
                match changes.get(table) {
                    Some(Change::Patch(p)) if p.valid_for(*len) && p.new_len(*len) == t.len() => {
                        let out = Change::Patch(p.clone());
                        *len = t.len();
                        Ok(out)
                    }
                    None | Some(Change::Unchanged) if t.len() == *len => Ok(Change::Unchanged),
                    _ => {
                        // Claim missing, wholesale, or inconsistent with the
                        // table's actual size: fall back to the real rows.
                        *len = t.len();
                        Ok(Change::Full(t.rows().to_vec()))
                    }
                }
            }
            DNode::Values => Ok(Change::Unchanged),
            DNode::Select {
                input,
                in_schema,
                predicate,
                lineage,
            } => match input.refresh(db, changes, exec)? {
                Change::Unchanged => Ok(Change::Unchanged),
                Change::Full(rows) => {
                    let passed = select_batch(exec, in_schema, predicate, rows.clone())?;
                    let mut out = Vec::new();
                    for (i, r) in rows.into_iter().enumerate() {
                        if passed[i] {
                            out.push(r);
                        }
                    }
                    let (lin, _) =
                        RankList::from_entries(passed.iter().map(|&b| ((), u64::from(b))));
                    *lineage = lin;
                    Ok(Change::Full(out))
                }
                Change::Patch(p) => {
                    // Only delta rows see the predicate (retained rows
                    // evaluated it in a previous successful run). Two
                    // passes over the patch events, each O(delta · log n):
                    // pass 1 reads output ranks against the pre-state
                    // lineage; pass 2 splices the events into the index.
                    let cands: Vec<Row> = p.new_rows().cloned().collect();
                    let passed = select_batch(exec, in_schema, predicate, cands)?;
                    let mut pb = PatchBuilder::default();
                    // Pass 1 (ascending, read-only): inserts before the
                    // delete at the same child position, mirroring patch
                    // application order.
                    let mut del = p.deleted().iter().peekable();
                    let mut ins = p.inserted().iter().peekable();
                    let mut ci = 0usize; // candidate cursor
                    while del.peek().is_some() || ins.peek().is_some() {
                        let dp = del.peek().map_or(usize::MAX, |&&d| d);
                        let ip = ins.peek().map_or(usize::MAX, |(pos, _)| *pos);
                        if ip <= dp {
                            let (pos, rows) = ins.next().expect("peeked");
                            let rank = lineage.weight_before(*pos) as usize;
                            for r in rows {
                                if passed[ci] {
                                    pb.insert(rank, r.clone());
                                }
                                ci += 1;
                            }
                        } else {
                            let d = *del.next().expect("peeked");
                            if lineage.weight_of(lineage.id_at(d)) == 1 {
                                pb.delete(lineage.weight_before(d) as usize);
                            }
                        }
                    }
                    // Pass 2 (descending mutation): higher positions first
                    // so every event still applies at a valid pre-state
                    // ordinal; at equal positions the delete goes first.
                    let starts: Vec<usize> = {
                        let mut s = 0usize;
                        p.inserted()
                            .iter()
                            .map(|(_, rows)| {
                                let here = s;
                                s += rows.len();
                                here
                            })
                            .collect()
                    };
                    let mut di = p.deleted().len();
                    let mut gi = p.inserted().len();
                    while di > 0 || gi > 0 {
                        let take_delete =
                            di > 0 && (gi == 0 || p.deleted()[di - 1] >= p.inserted()[gi - 1].0);
                        if take_delete {
                            di -= 1;
                            lineage.remove_at(p.deleted()[di]);
                        } else {
                            gi -= 1;
                            let (pos, rows) = &p.inserted()[gi];
                            for k in 0..rows.len() {
                                lineage.insert_at(pos + k, (), u64::from(passed[starts[gi] + k]));
                            }
                        }
                    }
                    Ok(pb.into_change())
                }
            },
            DNode::Project {
                input,
                in_schema,
                columns,
            } => match input.refresh(db, changes, exec)? {
                Change::Unchanged => Ok(Change::Unchanged),
                Change::Full(rows) => {
                    Ok(Change::Full(project_batch(exec, in_schema, columns, rows)?))
                }
                Change::Patch(p) => {
                    // 1:1 positional: delta rows map through the executor,
                    // positions carry over unchanged.
                    let outs =
                        project_batch(exec, in_schema, columns, p.new_rows().cloned().collect())?;
                    let mut it = outs.into_iter();
                    let inserted = p
                        .inserted()
                        .iter()
                        .map(|(pos, rows)| (*pos, it.by_ref().take(rows.len()).collect()))
                        .collect();
                    Ok(Change::Patch(Patch {
                        deleted: p.deleted().to_vec(),
                        inserted,
                    }))
                }
            },
            DNode::Rename { input } => input.refresh(db, changes, exec),
            DNode::Union {
                inputs,
                child_rows,
                schema,
            } => {
                let mut ch = Vec::with_capacity(inputs.len());
                for n in inputs.iter_mut() {
                    ch.push(n.refresh(db, changes, exec)?);
                }
                if ch.iter().all(Change::is_unchanged) {
                    return Ok(Change::Unchanged);
                }
                // New rows from children ≥ 1 are the only fallible output
                // validation (the union schema keeps child 0's nullability);
                // check them in output order, as `from_rows` would.
                for (k, c) in ch.iter().enumerate() {
                    if k == 0 {
                        continue;
                    }
                    match c {
                        Change::Unchanged => {}
                        Change::Patch(p) => {
                            for r in p.new_rows() {
                                schema.check_row(r)?;
                            }
                        }
                        Change::Full(rows) => {
                            for r in rows {
                                schema.check_row(r)?;
                            }
                        }
                    }
                }
                if ch.iter().any(|c| matches!(c, Change::Full(_))) {
                    let mut out = Vec::new();
                    for (rows, c) in child_rows.iter_mut().zip(&ch) {
                        rows.push(c);
                        out.extend(rows.rows().iter().cloned());
                    }
                    return Ok(Change::Full(out));
                }
                // All patches: shift child coordinates by the child's old
                // offset — O(delta), only lengths are read. Child k's
                // appends land just before child k+1's position-0 inserts
                // at the same output position, matching the concatenated
                // rebuild.
                let mut pb = PatchBuilder::default();
                let mut off = 0usize;
                for (rows, c) in child_rows.iter_mut().zip(&ch) {
                    let old_len = rows.len();
                    if let Change::Patch(p) = c {
                        for &d in p.deleted() {
                            pb.delete(off + d);
                        }
                        for (pos, grp) in p.inserted() {
                            pb.insert_rows(off + pos, grp.clone());
                        }
                    }
                    rows.push(c);
                    off += old_len;
                }
                Ok(pb.into_change())
            }
            DNode::Join {
                left,
                right,
                left_rows,
                right_rows,
                index,
                out_counts,
                l_idx,
                r_idx,
                r_arity,
                kind,
            } => {
                let lc = left.refresh(db, changes, exec)?;
                let rc = right.refresh(db, changes, exec)?;
                match (lc, rc) {
                    (Change::Unchanged, Change::Unchanged) => Ok(Change::Unchanged),
                    (Change::Patch(p), Change::Unchanged) => {
                        // Probe-side delta: re-probe only delta left rows
                        // against the retained build side. Each old left
                        // row owns a contiguous output range given by the
                        // prefix sums of `out_counts`.
                        let mut prefix = Vec::with_capacity(out_counts.len() + 1);
                        prefix.push(0usize);
                        for &c in out_counts.iter() {
                            prefix.push(prefix.last().expect("nonempty") + c);
                        }
                        let old_len = left_rows.len();
                        let old_counts = std::mem::take(out_counts);
                        let mut new_left = Vec::with_capacity(p.new_len(old_len));
                        let mut new_counts = Vec::with_capacity(p.new_len(old_len));
                        let mut pb = PatchBuilder::default();
                        let mut del = p.deleted().iter().peekable();
                        let mut ins = p.inserted().iter().peekable();
                        let mut old_iter = std::mem::take(left_rows).into_iter();
                        for i in 0..=old_len {
                            while ins.peek().is_some_and(|(pos, _)| *pos == i) {
                                for r in &ins.next().expect("peeked").1 {
                                    let outs =
                                        probe_left(r, l_idx, index, right_rows, *r_arity, *kind);
                                    new_counts.push(outs.len());
                                    pb.insert_rows(prefix[i], outs);
                                    new_left.push(r.clone());
                                }
                            }
                            if i == old_len {
                                break;
                            }
                            let row = old_iter.next().expect("in range");
                            if del.peek() == Some(&&i) {
                                del.next();
                                for op in prefix[i]..prefix[i + 1] {
                                    pb.delete(op);
                                }
                            } else {
                                new_left.push(row);
                                new_counts.push(old_counts[i]);
                            }
                        }
                        *left_rows = new_left;
                        *out_counts = new_counts;
                        Ok(pb.into_change())
                    }
                    (lc, rc) => {
                        // Build side changed (or probe side replaced):
                        // rebuild the index and re-probe everything.
                        lc.apply_to(left_rows);
                        rc.apply_to(right_rows);
                        *index = build_join_index(right_rows, r_idx);
                        let mut out = Vec::new();
                        out_counts.clear();
                        for lrow in left_rows.iter() {
                            let outs = probe_left(lrow, l_idx, index, right_rows, *r_arity, *kind);
                            out_counts.push(outs.len());
                            out.extend(outs);
                        }
                        Ok(Change::Full(out))
                    }
                }
            }
            DNode::Aggregate {
                input,
                rows_idx,
                groups,
                g_idx,
                agg_idx,
                aggregates,
                retractable,
                global,
                schema,
            } => {
                let n_aggs = aggregates.len();
                match input.refresh(db, changes, exec)? {
                    Change::Unchanged => Ok(Change::Unchanged),
                    Change::Full(rows) => {
                        *groups = agg_build(&rows, g_idx, agg_idx, n_aggs, *global);
                        *rows_idx = FirstSeenIndex::from_rows(rows, g_idx.clone());
                        let out = agg_emit(rows_idx, groups, aggregates, *global);
                        for r in &out {
                            schema.check_row(r)?;
                        }
                        Ok(Change::Full(out))
                    }
                    Change::Patch(p) => {
                        // Splice the patch into the first-occurrence index;
                        // the returned classification carries deleted row
                        // content, old ranks, and order-breaking events.
                        let fsp = FirstSeenPatch::apply(rows_idx, &p);
                        if *retractable {
                            for r in &fsp.deleted_rows {
                                let key = row_key(r, g_idx);
                                let st = groups.get_mut(&key).expect("row was folded");
                                for (idx, acc) in agg_idx.iter().zip(st.accs.iter_mut()) {
                                    acc.retract(*idx, r);
                                }
                                st.rows -= 1;
                                if st.rows == 0 && !*global {
                                    groups.remove(&key);
                                }
                            }
                            for r in p.new_rows() {
                                agg_fold(groups, r, g_idx, agg_idx, n_aggs);
                            }
                        } else {
                            // Lossy retraction (MIN/MAX, FLOAT sums):
                            // recompute only the affected groups, folding
                            // each group's surviving occurrences in input
                            // order (float summation order matters).
                            for key in &fsp.affected {
                                groups.remove(key);
                            }
                            if *global && !groups.contains_key(&Vec::new()) {
                                groups.insert(Vec::new(), new_group(n_aggs));
                            }
                            for key in &fsp.affected {
                                for pos in rows_idx.occurrence_positions(key) {
                                    agg_fold(groups, rows_idx.row(pos), g_idx, agg_idx, n_aggs);
                                }
                            }
                        }
                        // Changed output rows validate here; unchanged rows
                        // passed the identical check in the previous
                        // successful run, so the rebuild's first validation
                        // error is reproduced.
                        let out = if *global {
                            // Single output row, always at rank 0.
                            let mut pb = PatchBuilder::default();
                            pb.delete(0);
                            pb.insert(0, agg_row(&[], &groups[&Vec::new()], aggregates));
                            Some(match pb.into_change() {
                                Change::Patch(patch) => patch,
                                _ => Patch::default(),
                            })
                        } else {
                            fsp.emit(rows_idx, |k| agg_row(k, &groups[k], aggregates))
                        };
                        match out {
                            Some(patch) if patch.is_empty() => Ok(Change::Unchanged),
                            Some(patch) => {
                                for r in patch.new_rows() {
                                    schema.check_row(r)?;
                                }
                                Ok(Change::Patch(patch))
                            }
                            None => {
                                let full = agg_emit(rows_idx, groups, aggregates, *global);
                                for r in &full {
                                    schema.check_row(r)?;
                                }
                                Ok(Change::Full(full))
                            }
                        }
                    }
                }
            }
            DNode::Pivot {
                input,
                rows_idx,
                key_idx,
                attr_idx,
                val_idx,
                attrs,
            } => match input.refresh(db, changes, exec)? {
                Change::Unchanged => Ok(Change::Unchanged),
                Change::Full(rows) => {
                    let out = pivot_rows(&rows, key_idx, *attr_idx, *val_idx, attrs)?;
                    *rows_idx = FirstSeenIndex::from_rows(rows, key_idx.clone());
                    Ok(Change::Full(out))
                }
                Change::Patch(p) => {
                    let attr_pos: HashMap<&str, usize> = attrs
                        .iter()
                        .enumerate()
                        .map(|(i, (n, _))| (n.as_str(), i))
                        .collect();
                    // Delta rows validate first, in input order — retained
                    // rows passed the same checks in a previous run, so
                    // this reproduces the rebuild's first error.
                    for r in p.new_rows() {
                        check_pivot_row(r, *attr_idx, *val_idx, &attr_pos, attrs)?;
                    }
                    let fsp = FirstSeenPatch::apply(rows_idx, &p);
                    // Rebuild affected entities' wide rows from each
                    // entity's surviving occurrences, in input order (last
                    // write per cell wins, as in `pivot_rows`).
                    let mut rebuilt: HashMap<Vec<Value>, Row> = HashMap::new();
                    for key in &fsp.affected {
                        for pos in rows_idx.occurrence_positions(key) {
                            let row = rows_idx.row(pos);
                            let slot = rebuilt.entry(key.clone()).or_insert_with_key(|k| {
                                let mut r = k.clone();
                                r.extend(std::iter::repeat_n(Value::Null, attrs.len()));
                                r
                            });
                            let attr = match &row[*attr_idx] {
                                Value::Text(a) => a.as_str(),
                                _ => unreachable!("validated above or in a previous run"),
                            };
                            if let Some(&apos) = attr_pos.get(attr) {
                                let v = match &row[*val_idx] {
                                    Value::Null => continue,
                                    Value::Text(t) => cast_text(t, attrs[apos].1)?,
                                    other => cast_text(&other.to_string(), attrs[apos].1)?,
                                };
                                slot[key_idx.len() + apos] = v;
                            }
                        }
                    }
                    match fsp.emit(rows_idx, |k| rebuilt[k].clone()) {
                        Some(patch) if patch.is_empty() => Ok(Change::Unchanged),
                        Some(patch) => Ok(Change::Patch(patch)),
                        None => {
                            let rows: Vec<Row> = rows_idx.rows_in_order().cloned().collect();
                            Ok(Change::Full(pivot_rows(
                                &rows, key_idx, *attr_idx, *val_idx, attrs,
                            )?))
                        }
                    }
                }
            },
            DNode::Recompute {
                input,
                in_schema,
                in_rows,
                kernel,
            } => match input.refresh(db, changes, exec)? {
                Change::Unchanged => Ok(Change::Unchanged),
                c => {
                    // Order-sensitive whole-input operators (Sort,
                    // Distinct, Limit, Unpivot) recompute from the patched
                    // cached input; downstream sees a Full change.
                    c.apply_to(in_rows);
                    Ok(Change::Full(kernel.run(in_schema, in_rows)))
                }
            },
        }
    }
}

/// A plan with cached differential state: initialize once against a
/// database, then [`DeltaPlan::refresh`] after each batch of base-table
/// changes to get the new output without recomputing unchanged rows.
///
/// The output (rows **and** errors) is byte-identical to re-running the
/// plan from scratch on the current database state, provided the
/// [`TableChanges`] passed to each refresh accurately describe every
/// mutation since the previous call (changes captured through
/// [`DeltaCatalog`] satisfy this by construction; the plan additionally
/// cross-checks schemas and row counts and falls back to full
/// recomputation on any mismatch). After an error the plan is *poisoned*:
/// the next refresh re-initializes from scratch, reproducing the rebuild's
/// behavior — including the same error if the fault persists.
#[derive(Clone)]
pub struct DeltaPlan {
    plan: Plan,
    root: DNode,
    schema: Schema,
    rows: LazyRows,
    poisoned: bool,
}

impl DeltaPlan {
    /// Evaluate `plan` once, caching per-operator differential state.
    pub fn init(plan: &Plan, db: &Database, exec: &Executor) -> RelResult<DeltaPlan> {
        let (root, schema, rows) = DNode::init(plan, db, exec)?;
        Ok(DeltaPlan {
            plan: plan.clone(),
            root,
            schema,
            rows: LazyRows::new(rows),
            poisoned: false,
        })
    }

    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of output rows currently cached. `O(1)` — patch refreshes
    /// track the length without materializing the spliced row vector.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the cached output has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }

    /// True after a refresh error; the next refresh re-initializes.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The current output as a table — byte-identical to what
    /// `plan.eval(db)` returns for the current database state. `O(n)`:
    /// the cached rows are cloned (and any queued patches replayed).
    pub fn output(&self) -> RelResult<Table> {
        Table::from_validated(self.schema.clone(), self.rows.to_rows())
    }

    /// Propagate base-table changes to the output. Returns how the output
    /// changed relative to the previous state ([`Change::Unchanged`] when
    /// nothing downstream-visible moved), for threading into consumers
    /// that cache this plan's output.
    pub fn refresh(
        &mut self,
        db: &Database,
        changes: &TableChanges,
        exec: &Executor,
    ) -> RelResult<Change> {
        if self.poisoned || self.root.scans_stale(db) {
            // Full re-initialization: either the previous refresh errored,
            // or a scanned table's schema changed under us (stale bindings).
            let (root, schema, rows) = DNode::init(&self.plan, db, exec)?;
            self.root = root;
            self.schema = schema;
            self.rows = LazyRows::new(rows.clone());
            self.poisoned = false;
            return Ok(Change::Full(rows));
        }
        match self.root.refresh(db, changes, exec) {
            Ok(change) => {
                self.rows.push(&change);
                Ok(change)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Aggregate;
    use crate::expr::Expr;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn test_db() -> Database {
        let schema = Schema::new(
            "t",
            vec![
                Column::required("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("x", DataType::Int),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut db = Database::new("d");
        db.create_table(
            Table::from_rows(
                schema,
                (0..20i64)
                    .map(|i| row(&[i, i % 3, i * 10]))
                    .collect::<Vec<Row>>(),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn patch_apply_inserts_before_deletes_at_position() {
        let old = vec![row(&[0]), row(&[1]), row(&[2])];
        let p = Patch::new(vec![1], vec![(1, vec![row(&[10])]), (3, vec![row(&[30])])]).unwrap();
        assert_eq!(
            p.apply(old),
            vec![row(&[0]), row(&[10]), row(&[2]), row(&[30])]
        );
        assert_eq!(p.new_len(3), 4);
    }

    #[test]
    fn delta_catalog_canonical_merge_and_roundtrip() {
        let mut cat = Catalog::new();
        cat.insert(test_db());
        let pre = cat
            .database("d")
            .unwrap()
            .table("t")
            .unwrap()
            .rows()
            .to_vec();
        let mut dc = DeltaCatalog::new(cat);
        dc.insert("d", "t", row(&[100, 1, 5])).unwrap();
        let n = dc
            .update_where(
                "d",
                "t",
                |r| r[0] == Value::Int(3),
                |r| r[2] = Value::Int(999),
            )
            .unwrap();
        assert_eq!(n, 1);
        let n = dc
            .delete_where("d", "t", |r| r[0] == Value::Int(7))
            .unwrap();
        assert_eq!(n, 1);
        // Updated row moved to the end (after the explicit insert).
        let live = dc
            .catalog()
            .database("d")
            .unwrap()
            .table("t")
            .unwrap()
            .clone();
        let last = live.rows().last().unwrap();
        assert_eq!(last, &row(&[3, 0, 999]));
        let deltas = dc.take_deltas();
        let d = deltas.get("d", "t").unwrap();
        assert_eq!(d.pre_len, 20);
        assert_eq!(
            d.deleted.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![3, 7]
        );
        // Roundtrip: canonical merge of the delta over the pre-state
        // reproduces the live table exactly.
        assert_eq!(d.apply(&pre), live.rows());
        // Second window starts empty.
        assert!(dc.take_deltas().is_empty());
    }

    #[test]
    fn delta_catalog_insert_duplicate_key_is_atomic() {
        let mut cat = Catalog::new();
        cat.insert(test_db());
        let mut dc = DeltaCatalog::new(cat);
        let err = dc.insert("d", "t", row(&[5, 0, 0])).unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey { .. }));
        assert!(dc.take_deltas().is_empty());
        assert_eq!(
            dc.catalog()
                .database("d")
                .unwrap()
                .table("t")
                .unwrap()
                .len(),
            20
        );
    }

    /// Refresh must match a from-scratch evaluation after every mutation
    /// batch, for a plan covering Select/Project/Join/Aggregate/Pivot.
    #[test]
    fn refresh_matches_rebuild_across_operators() {
        let exec = Executor::new();
        let plans: Vec<Plan> = vec![
            Plan::scan("t").select(Expr::col("x").gt(Expr::lit(40i64))),
            Plan::scan("t").project(vec![
                ("id2", Expr::col("id").mul(Expr::lit(2i64))),
                ("x", Expr::col("x")),
            ]),
            Plan::scan("t")
                .select(Expr::col("grp").ne(Expr::lit(1i64)))
                .aggregate(
                    &["grp"],
                    vec![
                        Aggregate {
                            func: AggFunc::CountAll,
                            alias: "n".into(),
                        },
                        Aggregate {
                            func: AggFunc::Sum("x".into()),
                            alias: "sx".into(),
                        },
                        Aggregate {
                            func: AggFunc::Min("x".into()),
                            alias: "mx".into(),
                        },
                    ],
                ),
            Plan::scan("t").join(
                Plan::scan("t").project(vec![("jg", Expr::col("grp")), ("jx", Expr::col("x"))]),
                vec![("grp", "jg")],
                JoinKind::Inner,
            ),
            Plan::scan("t").sort_by(&["grp", "x"]).limit(7),
        ];
        for plan in plans {
            let mut cat = Catalog::new();
            cat.insert(test_db());
            let mut dc = DeltaCatalog::new(cat);
            let mut dp =
                DeltaPlan::init(&plan, dc.catalog().database("d").unwrap(), &exec).unwrap();
            for step in 0..4 {
                dc.insert("d", "t", row(&[1000 + step, step % 3, step * 7]))
                    .unwrap();
                dc.delete_where("d", "t", |r| r[0] == Value::Int(step * 4))
                    .unwrap();
                dc.update_where(
                    "d",
                    "t",
                    |r| r[1] == Value::Int(step % 3) && r[2] == Value::Int(50),
                    |r| r[2] = Value::Int(51),
                )
                .unwrap();
                let deltas = dc.take_deltas();
                let mut changes = TableChanges::new();
                if let Some(d) = deltas.get("d", "t") {
                    changes.set("t", d.to_change());
                }
                let db = dc.catalog().database("d").unwrap();
                dp.refresh(db, &changes, &exec).unwrap();
                let fresh = exec.execute(&plan, db).unwrap();
                let incr = dp.output().unwrap();
                assert_eq!(incr.schema(), fresh.schema(), "plan {plan:?} step {step}");
                assert_eq!(incr.rows(), fresh.rows(), "plan {plan:?} step {step}");
            }
        }
    }

    /// An erroring refresh poisons the plan; the next refresh rebuilds and
    /// reproduces exactly what a from-scratch run produces.
    #[test]
    fn refresh_error_parity_and_poison_recovery() {
        let exec = Executor::new();
        // div by `x` errors when x == 0 arrives.
        let plan = Plan::scan("t").project(vec![("q", Expr::lit(100i64).div(Expr::col("x")))]);
        let mut cat = Catalog::new();
        cat.insert(test_db());
        // Row id=0 has x=0 — a full init must fail like eval does.
        let db_err = exec.execute(&plan, cat.database("d").unwrap()).unwrap_err();
        let dp_err = match DeltaPlan::init(&plan, cat.database("d").unwrap(), &exec) {
            Err(e) => e,
            Ok(_) => panic!("init should fail like eval"),
        };
        assert_eq!(format!("{db_err}"), format!("{dp_err}"));
        // Drop the bad row, init, then insert a new bad row via delta.
        let mut dc = DeltaCatalog::new(cat);
        dc.delete_where("d", "t", |r| r[2] == Value::Int(0))
            .unwrap();
        dc.take_deltas();
        let mut dp = DeltaPlan::init(&plan, dc.catalog().database("d").unwrap(), &exec).unwrap();
        dc.insert("d", "t", row(&[500, 0, 0])).unwrap();
        let deltas = dc.take_deltas();
        let mut changes = TableChanges::new();
        changes.set("t", deltas.get("d", "t").unwrap().to_change());
        let db = dc.catalog().database("d").unwrap();
        let incr_err = dp.refresh(db, &changes, &exec).unwrap_err();
        let full_err = exec.execute(&plan, db).unwrap_err();
        assert_eq!(format!("{incr_err}"), format!("{full_err}"));
        assert!(dp.is_poisoned());
        // Remove the bad row again: poisoned refresh re-inits and recovers.
        dc.delete_where("d", "t", |r| r[0] == Value::Int(500))
            .unwrap();
        dc.take_deltas();
        let db = dc.catalog().database("d").unwrap();
        dp.refresh(db, &TableChanges::new(), &exec).unwrap();
        assert!(!dp.is_poisoned());
        assert_eq!(
            dp.output().unwrap().rows(),
            exec.execute(&plan, db).unwrap().rows()
        );
    }

    #[test]
    fn unchanged_refresh_is_unchanged() {
        let exec = Executor::new();
        let plan = Plan::scan("t").select(Expr::col("grp").eq(Expr::lit(0i64)));
        let db = test_db();
        let mut dp = DeltaPlan::init(&plan, &db, &exec).unwrap();
        let c = dp.refresh(&db, &TableChanges::new(), &exec).unwrap();
        assert!(c.is_unchanged());
    }
}
