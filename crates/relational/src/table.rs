//! In-memory tables: a schema plus row storage with primary-key enforcement.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::segment::{SegmentList, SEGMENT_ROWS};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A row is a boxed slice of values; arity always matches the table schema.
pub type Row = Vec<Value>;

/// An in-memory table. Rows are stored in insertion order; a hash index over
/// the primary key (if declared) enforces uniqueness and gives O(1) lookup.
///
/// Row storage and the PK index are `Arc`-shared: cloning a table is O(1)
/// (copy-on-write on the next mutation), which is what lets the streaming
/// executor's scans be zero-copy and `Plan::Scan` avoid materializing a
/// fresh copy of the source table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    rows: Arc<Vec<Row>>,
    /// PK tuple → row position. Rebuilt on delete.
    #[serde(skip)]
    pk_index: Arc<HashMap<Vec<Value>, usize>>,
    /// Sealed columnar prefix (DESIGN.md §14), built lazily on the first
    /// segment-mode scan and shared O(1) with table clones. Inserts keep
    /// the cache — appended rows are the row-form delta store past
    /// [`SegmentList::covered`] — while in-place mutations drop it.
    /// Derived state: excluded from serde and equality.
    #[serde(skip)]
    segments: Arc<OnceLock<SegmentList>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Arc::new(Vec::new()),
            pk_index: Arc::new(HashMap::new()),
            segments: Arc::new(OnceLock::new()),
        }
    }

    /// Build a table from pre-validated rows, checking each.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Row>) -> RelResult<Table> {
        let mut t = Table::new(schema);
        for r in rows {
            t.insert(r)?;
        }
        Ok(t)
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The `Arc`-shared row storage. Cloning the returned handle is O(1)
    /// and shares storage with this table — the rows are never copied here,
    /// and the executor scans through the handle in place. The sharing is
    /// clone-on-write: the storage is immutable while shared, and a later
    /// [`Table::into_rows`] (or any mutation) on *any* holder pays the deep
    /// copy only if other handles are still alive at that point.
    pub fn shared_rows(&self) -> Arc<Vec<Row>> {
        Arc::clone(&self.rows)
    }

    /// Construct a table from rows the streaming executor has already
    /// validated against `schema`, skipping the per-row re-checks of
    /// [`Table::from_rows`]. The primary-key index is still rebuilt, so key
    /// uniqueness is enforced whenever `schema` declares a key.
    pub(crate) fn from_validated(schema: Schema, rows: Vec<Row>) -> RelResult<Table> {
        let mut t = Table {
            schema,
            rows: Arc::new(rows),
            pk_index: Arc::new(HashMap::new()),
            segments: Arc::new(OnceLock::new()),
        };
        t.rebuild_index()?;
        Ok(t)
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn key_of(&self, row: &[Value]) -> Option<Vec<Value>> {
        let pk = self.schema.primary_key();
        if pk.is_empty() {
            None
        } else {
            Some(pk.iter().map(|&i| row[i].clone()).collect())
        }
    }

    /// Insert a row, validating schema and primary-key uniqueness.
    pub fn insert(&mut self, row: Row) -> RelResult<()> {
        self.schema.check_row(&row)?;
        if let Some(key) = self.key_of(&row) {
            if self.pk_index.contains_key(&key) {
                return Err(RelError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: format!(
                        "({})",
                        key.iter()
                            .map(Value::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
            let at = self.rows.len();
            Arc::make_mut(&mut self.pk_index).insert(key, at);
        }
        Arc::make_mut(&mut self.rows).push(row);
        Ok(())
    }

    /// Look a row up by primary key. `None` if the table has no key or no
    /// matching row.
    pub fn get_by_key(&self, key: &[Value]) -> Option<&Row> {
        self.pk_index.get(key).map(|&i| &self.rows[i])
    }

    /// Update every row matching `pred` by applying `f`; returns the number
    /// of rows changed. The PK index is rebuilt afterwards; key collisions
    /// introduced by the update are reported.
    pub fn update_where<P, F>(&mut self, pred: P, mut f: F) -> RelResult<usize>
    where
        P: Fn(&[Value]) -> bool,
        F: FnMut(&mut Row),
    {
        // In-place edits invalidate the sealed prefix; drop the cache up
        // front so an error part-way through never leaves it stale.
        self.segments = Arc::new(OnceLock::new());
        let mut n = 0;
        for row in Arc::make_mut(&mut self.rows).iter_mut() {
            if pred(row) {
                f(row);
                self.schema.check_row(row)?;
                n += 1;
            }
        }
        if n > 0 {
            self.rebuild_index()?;
        }
        Ok(n)
    }

    /// Delete every row matching `pred`; returns the number removed.
    pub fn delete_where<P: Fn(&[Value]) -> bool>(&mut self, pred: P) -> RelResult<usize> {
        self.segments = Arc::new(OnceLock::new());
        let before = self.rows.len();
        Arc::make_mut(&mut self.rows).retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_index()?;
        }
        Ok(removed)
    }

    fn rebuild_index(&mut self) -> RelResult<()> {
        let index = Arc::make_mut(&mut self.pk_index);
        index.clear();
        let pk = self.schema.primary_key();
        if pk.is_empty() {
            return Ok(());
        }
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<Value> = pk.iter().map(|&c| row[c].clone()).collect();
            if index.insert(key.clone(), i).is_some() {
                return Err(RelError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: format!(
                        "({})",
                        key.iter()
                            .map(Value::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Restore the PK index after deserialization (serde skips it).
    pub fn reindex(&mut self) -> RelResult<()> {
        self.rebuild_index()
    }

    /// The sealed columnar prefix of this table, building it on first use
    /// (sealing every current row into [`crate::segment::Segment`]s). The
    /// list is cached; rows inserted afterwards form the row-form delta
    /// store past [`SegmentList::covered`] until
    /// [`Table::compact_segments`] folds them in.
    pub fn segments(&self) -> &SegmentList {
        self.segments
            .get_or_init(|| SegmentList::build(&self.schema, &self.rows))
    }

    /// Rows currently in the row-form delta store (inserted since the
    /// sealed prefix was built; the whole table if it was never built).
    pub fn unsealed_rows(&self) -> usize {
        self.rows.len() - self.segments.get().map_or(0, SegmentList::covered)
    }

    /// Carry `prev`'s sealed segment cache over to this table, returning
    /// whether a cache was adopted. Refresh paths rebuild tables wholesale
    /// from merged rows; when the merge was a pure append the old sealed
    /// prefix still describes `self.rows[..covered]` exactly, so
    /// re-sealing it would be wasted work. The caller must guarantee that
    /// prefix relationship (debug-asserted here); rows past the adopted
    /// prefix stay in the row-form delta store until
    /// [`Table::compact_segments`] folds them.
    pub fn adopt_segments(&mut self, prev: &Table) -> bool {
        let Some(list) = prev.segments.get() else {
            return false;
        };
        if list.covered() > self.rows.len() {
            return false;
        }
        debug_assert_eq!(self.rows[..list.covered()], prev.rows[..list.covered()]);
        let cell = OnceLock::new();
        let _ = cell.set(list.clone());
        self.segments = Arc::new(cell);
        true
    }

    /// Fold the row-form delta store into fresh sealed segments when it
    /// has grown past a compaction threshold (an eighth of
    /// [`SEGMENT_ROWS`]), or seal the whole table if no prefix exists
    /// yet. Returns whether new segments were sealed. Refresh paths
    /// ([`crate::delta::DeltaCatalog`], the warehouse study store) call
    /// this after landing deltas so steady-state scans stay columnar.
    pub fn compact_segments(&mut self) -> bool {
        match self.segments.get() {
            None => {
                self.segments();
                true
            }
            Some(list) if self.rows.len() - list.covered() >= SEGMENT_ROWS / 8 => {
                let extended = list.extended(&self.schema, &self.rows);
                let cell = OnceLock::new();
                let _ = cell.set(extended);
                self.segments = Arc::new(cell);
                true
            }
            Some(_) => false,
        }
    }

    /// Value of a named column in a given row.
    pub fn value(&self, row: usize, column: &str) -> RelResult<&Value> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| RelError::UnknownColumn {
                table: self.schema.name.clone(),
                column: column.to_owned(),
            })?;
        Ok(&self.rows[row][idx])
    }

    /// Consume the table into its rows (used by plan evaluation).
    ///
    /// Row storage is `Arc`-shared with clone-on-write semantics (see
    /// [`Table::shared_rows`]): when this table holds the only reference —
    /// no live [`Table::shared_rows`] handle and no clone of the table —
    /// the storage is unwrapped in O(1) and no row is copied. Otherwise
    /// the shared storage stays intact for the other holders and the rows
    /// are deep-cloned out here, which is the only point the sharing ever
    /// costs a copy.
    pub fn into_rows(self) -> Vec<Row> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Render the table as an ASCII grid — the shape analysts see when a
    /// study result is exported (and what the `tables` harness prints).
    pub fn render(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |row: &[String]| {
            let mut s = String::from("|");
            for (w, c) in widths.iter().zip(row) {
                s.push(' ');
                s.push_str(c);
                s.push_str(&" ".repeat(w - c.len() + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &cells {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// Tables compare by schema and row content (the index is derived state).
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Table {}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn patients() -> Table {
        let schema = Schema::new(
            "patients",
            vec![
                Column::required("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("smoker", DataType::Bool),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::text("ada"), Value::Bool(true)],
                vec![Value::Int(2), Value::text("bob"), Value::Bool(false)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup_by_key() {
        let t = patients();
        assert_eq!(t.len(), 2);
        let row = t.get_by_key(&[Value::Int(2)]).unwrap();
        assert_eq!(row[1], Value::text("bob"));
        assert!(t.get_by_key(&[Value::Int(9)]).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = patients();
        let err = t
            .insert(vec![Value::Int(1), Value::text("dup"), Value::Null])
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey { .. }));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn update_where_reindexes() {
        let mut t = patients();
        let n = t
            .update_where(|r| r[0] == Value::Int(2), |r| r[0] = Value::Int(20))
            .unwrap();
        assert_eq!(n, 1);
        assert!(t.get_by_key(&[Value::Int(20)]).is_some());
        assert!(t.get_by_key(&[Value::Int(2)]).is_none());
    }

    #[test]
    fn update_into_duplicate_key_fails() {
        let mut t = patients();
        let err = t
            .update_where(|r| r[0] == Value::Int(2), |r| r[0] = Value::Int(1))
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey { .. }));
    }

    #[test]
    fn delete_where_removes_and_reindexes() {
        let mut t = patients();
        assert_eq!(t.delete_where(|r| r[2] == Value::Bool(false)).unwrap(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.get_by_key(&[Value::Int(2)]).is_none());
        assert!(t.get_by_key(&[Value::Int(1)]).is_some());
    }

    #[test]
    fn typed_insert_rejected() {
        let mut t = patients();
        assert!(t
            .insert(vec![Value::Int(3), Value::Int(5), Value::Null])
            .is_err());
    }

    #[test]
    fn render_contains_headers_and_values() {
        let s = patients().render();
        assert!(s.contains("| id "));
        assert!(s.contains("ada"));
        assert!(s.contains("FALSE"));
    }

    #[test]
    fn serde_roundtrip_with_reindex() {
        let t = patients();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Table = serde_json::from_str(&json).unwrap();
        assert!(
            back.get_by_key(&[Value::Int(1)]).is_none(),
            "index skipped by serde"
        );
        back.reindex().unwrap();
        assert!(back.get_by_key(&[Value::Int(1)]).is_some());
    }
}
