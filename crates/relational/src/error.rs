//! Error type shared by the relational substrate.

use crate::value::DataType;
use std::fmt;

/// Errors raised by schema operations, DML, and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table name was not found in the database.
    UnknownTable(String),
    /// A column name was not found in a schema.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A schema declares the same column twice.
    DuplicateColumn(String),
    /// A row's arity does not match the schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A value's type does not match the column type.
    TypeMismatch {
        column: String,
        expected: DataType,
        got: Option<DataType>,
    },
    /// A NULL was supplied for a NOT NULL column.
    NullViolation(String),
    /// A duplicate primary key was inserted.
    DuplicateKey { table: String, key: String },
    /// Expression evaluation failed (type errors, division by zero, ...).
    Eval(String),
    /// A query plan is malformed (e.g. union of incompatible schemas).
    Plan(String),
    /// CSV parsing failed.
    Csv(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RelError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in `{table}`")
            }
            RelError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            RelError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            RelError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row arity {got} does not match schema of `{table}` (expected {expected})"
                )
            }
            RelError::TypeMismatch {
                column,
                expected,
                got,
            } => match got {
                Some(got) => write!(
                    f,
                    "type mismatch in `{column}`: expected {expected}, got {got}"
                ),
                None => write!(
                    f,
                    "type mismatch in `{column}`: expected {expected}, got NULL"
                ),
            },
            RelError::NullViolation(c) => write!(f, "NULL in NOT NULL column `{c}`"),
            RelError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in `{table}`")
            }
            RelError::Eval(m) => write!(f, "evaluation error: {m}"),
            RelError::Plan(m) => write!(f, "invalid plan: {m}"),
            RelError::Csv(m) => write!(f, "csv error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias used throughout the substrate.
pub type RelResult<T> = Result<T, RelError>;
