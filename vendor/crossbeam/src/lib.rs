//! Offline vendored stand-in for `crossbeam` 0.8.
//!
//! Only the `thread::scope` API surface this workspace uses is provided,
//! implemented over `std::thread::scope` (stable since Rust 1.63). Matches
//! crossbeam's signatures: the spawn closure receives a `&Scope` so spawned
//! threads can spawn further siblings, and `scope` returns `Err` if the
//! closure itself panics.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a join: `Err` carries the panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure is
        /// handed a `&Scope` so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: all threads spawned inside are joined before it
    /// returns. `Err` is returned if `f` itself panics (panics of spawned
    /// threads surface through their join handles, as in crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_and_join() {
            let data = vec![1, 2, 3];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data.iter().map(|&n| scope.spawn(move |_| n * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 60);
        }

        #[test]
        fn child_panic_surfaces_via_join() {
            let res = super::scope(|scope| {
                let h = scope.spawn(|_| -> i32 { panic!("boom") });
                h.join()
            })
            .unwrap();
            assert!(res.is_err());
        }
    }
}
