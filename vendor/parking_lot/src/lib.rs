//! Offline vendored stand-in for `parking_lot` 0.12.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `read()`/`write()`/`lock()` return guards directly, recovering the data
//! if a previous holder panicked.

use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

/// Mutex with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
