//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors a
//! compact re-implementation of the proptest API surface its tests use:
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, tuple and range
//! strategies, a character-class regex subset for `&str` strategies,
//! `proptest::collection::vec`, `proptest::option::of`, `Just`, `any`,
//! `Union` (behind `prop_oneof!`), and the `proptest!` / `prop_compose!` /
//! `prop_assert*!` macros.
//!
//! Generation is deterministic: each test case's RNG is seeded from the
//! test's module path and the case index, so failures reproduce exactly on
//! re-run. No shrinking is performed — counterexamples are printed as
//! generated.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ------------------------------------------------------------------ runner

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejection sampling is not used.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 0,
        }
    }
}

/// A failed property case (returned by `prop_assert*!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Compatibility alias for proptest's `TestCaseError::Fail`.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> TestCaseError {
        TestCaseError(s)
    }
}

/// Deterministic splitmix64 RNG used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Seed for one case of one named test: FNV-1a over the name, mixed
    /// with the case index.
    ///
    /// Setting `PROPTEST_RNG_SEED=<u64>` XORs the given value into every
    /// seed, letting CI pin a run (`PROPTEST_RNG_SEED=0` is the default
    /// stream) or explore a fresh one without editing code.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let env_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::from_seed(h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ env_seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------- strategy

/// A generator of random values — the vendored analogue of
/// `proptest::strategy::Strategy` (generation only, no shrink trees).
pub trait Strategy: Clone {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Layered recursion: `depth` applications of `recurse`, each level
    /// choosing between going deeper (weight 3) and the leaf (weight 1), so
    /// generated values span shallow to `depth`-deep shapes.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        strat
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Weighted choice between strategies of a common value type — what
/// `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0), "weights must be positive");
        let total = arms.iter().map(|(w, _)| w).sum();
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % u64::from(self.total)) as u32;
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------ primitives

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Strategy for `any::<T>()`.
pub struct Any<A>(PhantomData<fn() -> A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

// ---------------------------------------------------------- regex subset

/// `&'static str` patterns act as string strategies over a regex subset:
/// literal characters, character classes (`[a-z 0-9_]` with ranges), and
/// the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut alpha = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in `{pattern}`");
                        for c in lo..=hi {
                            alpha.push(c);
                        }
                        j += 3;
                    } else {
                        alpha.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!alpha.is_empty(), "empty class in `{pattern}`");
                i = close + 1;
                alpha
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 2;
                vec![c]
            }
            c if "(){}*+?|.^$".contains(c) => {
                panic!("unsupported regex construct `{c}` in pattern `{pattern}`")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("bad quantifier"),
                        hi.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len())]);
        }
    }
    out
}

// ---------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds, converted from `usize`, `a..b`, or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of elements from an inner strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` 25% of the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// -------------------------------------------------------------- prelude

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

// --------------------------------------------------------------- macros

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(__test_name, __case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                let mut __repr = String::new();
                $(
                    __repr.push_str(concat!("  ", stringify!($arg), " = "));
                    __repr.push_str(&format!("{:?}\n", &$arg));
                )*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}\ninputs:\n{}",
                            __case, __test_name, __e, __repr
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest case {} of `{}` panicked; inputs:\n{}",
                            __case, __test_name, __repr
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Compose a named strategy function: bind sub-strategies, map to a value.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident : $pty:ty),* $(,)?)
            ($($var:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)*),
                move |($($var,)*)| $body,
            )
        }
    };
}

/// Uniform (or `weight => strategy` weighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the enclosing property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        __left, __right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: `{:?}`\n right: `{:?}`",
                        format!($($fmt)+),
                        __left,
                        __right
                    )));
                }
            }
        }
    };
}

/// Fail the enclosing property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{:?}`",
                        __left
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_case() {
        let strat = crate::collection::vec(0i64..100, 0..10);
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[a-z ]{0,10}".generate(&mut rng);
            assert!(t.len() <= 10);
        }
    }

    prop_compose! {
        fn small_pair(limit: i64)(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a.min(limit), b.min(limit))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn composed_and_oneof_work(
            pair in small_pair(5),
            pick in prop_oneof![Just(0i64), 1i64..4, any::<bool>().prop_map(i64::from)],
            v in crate::collection::vec(crate::option::of(0i64..50), 0..6),
        ) {
            prop_assert!(pair.0 <= 5 && pair.1 <= 5);
            prop_assert!((0..4).contains(&pick));
            prop_assert!(v.len() < 6);
            for o in &v {
                if let Some(x) = o {
                    prop_assert_eq!(*x, *x);
                    prop_assert!(*x < 50, "value {} out of range", x);
                }
            }
        }

        #[test]
        fn recursive_strategies_terminate(
            n in (0i64..4).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| (a + b).min(1000))
            }),
        ) {
            prop_assert!((0..=1000).contains(&n));
        }
    }
}
