//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on top of the compiler's `proc_macro` API (no
//! syn/quote — the registry is unreachable in this build environment).
//! Supports the shapes this workspace actually derives: non-generic
//! structs with named fields, tuple structs, and enums with unit, tuple,
//! and struct variants. Recognized field attributes: `#[serde(skip)]`
//! (omit on serialize, `Default::default()` on deserialize) and
//! `#[serde(default)]` (missing field deserializes to its default).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" {
                i += 1;
                break;
            }
            if s == "enum" {
                is_enum = true;
                i += 1;
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body for {name}, found {other:?}"),
        };
        let variants = split_top_level(body)
            .into_iter()
            .map(|seg| parse_variant(&seg))
            .collect();
        Input {
            name,
            kind: Kind::Enum(variants),
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(split_top_level(g.stream()).len())
            }
            _ => Shape::Unit,
        };
        Input {
            name,
            kind: Kind::Struct(shape),
        }
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting.
/// (Groups are atomic trees, so only angle brackets need depth tracking.)
fn split_top_level(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth: i32 = 0;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consume leading `#[...]` attributes; report serde skip/default markers.
fn take_attrs(tokens: &[TokenTree]) -> (usize, bool, bool) {
    let mut i = 0;
    let mut skip = false;
    let mut default = false;
    while i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for tt in args.stream() {
                                if let TokenTree::Ident(arg) = tt {
                                    match arg.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        other => panic!(
                                            "unsupported serde attribute `{other}` \
                                             (vendored serde_derive supports skip/default)"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, skip, default)
}

fn parse_field(tokens: &[TokenTree]) -> Field {
    let (start, skip, default) = take_attrs(tokens);
    // The field name is the last ident before the first `:` punct.
    let mut name = None;
    for tt in &tokens[start..] {
        match tt {
            TokenTree::Ident(id) => name = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => break,
            _ => {}
        }
    }
    Field {
        name: name.expect("field name"),
        skip,
        default,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    split_top_level(ts)
        .into_iter()
        .map(|seg| parse_field(&seg))
        .collect()
}

fn parse_variant(tokens: &[TokenTree]) -> Variant {
    let (start, _, _) = take_attrs(tokens);
    let name = match &tokens[start] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected variant name, found {other:?}"),
    };
    let shape = match tokens.get(start + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        _ => Shape::Unit,
    };
    Variant { name, shape }
}

// ---------------------------------------------------------------- codegen

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut body = String::from(
        "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.skip {
            continue;
        }
        body.push_str(&format!(
            "__o.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_json(&{p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    body.push_str("::serde::Json::Object(__o)");
    body
}

fn de_named_fields(ty_label: &str, fields: &[Field], entries_var: &str) -> String {
    // Produces the `field: value,` list for a struct literal. The leading
    // binding is referenced even when every field is skipped, so the
    // generated code never trips an unused-variable lint in the user crate.
    let mut body = String::new();
    for f in fields {
        if f.skip {
            body.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            body.push_str(&format!(
                "{n}: match ::serde::json_get({e}, \"{n}\") {{ \
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_json(__v)?, \
                 ::std::option::Option::None => ::std::default::Default::default() }},\n",
                n = f.name,
                e = entries_var,
            ));
        } else {
            body.push_str(&format!(
                "{n}: match ::serde::json_get({e}, \"{n}\") {{ \
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_json(__v)?, \
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::DeError::missing_field(\"{t}\", \"{n}\")) }},\n",
                n = f.name,
                e = entries_var,
                t = ty_label,
            ));
        }
    }
    body
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "::serde::Json::Null".to_string(),
        Kind::Struct(Shape::Named(fields)) => ser_named_fields(fields, "self."),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Json::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Json::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!(
                                "::serde::Json::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Json::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds = binders.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ let __payload = {{ {inner} }}; \
                             ::serde::Json::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), __payload)]) }},\n",
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Json {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => {
            format!("let _ = __v;\n::std::result::Result::Ok({name})")
        }
        Kind::Struct(Shape::Named(fields)) => {
            let field_inits = de_named_fields(name, fields, "__entries");
            format!(
                "let __entries = match __v {{ \
                 ::serde::Json::Object(__o) => __o.as_slice(), \
                 __other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"an object for {name}\", __other)) }};\n\
                 let _ = __entries;\n\
                 ::std::result::Result::Ok({name} {{\n{field_inits}}})"
            )
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = match __v.as_array() {{ \
                 ::std::option::Option::Some(__a) if __a.len() == {n} => __a, \
                 _ => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"an array of {n} for {name}\", __v)) }};\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_json(__val)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = match __val.as_array() {{ \
                             ::std::option::Option::Some(__a) if __a.len() == {n} => __a, \
                             _ => return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"an array of {n} for {name}::{vn}\", __val)) }}; \
                             ::std::result::Result::Ok({name}::{vn}({items})) }},\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let field_inits = de_named_fields(vn, fields, "__entries");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __entries = match __val {{ \
                             ::serde::Json::Object(__o) => __o.as_slice(), \
                             __other => return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"an object for {name}::{vn}\", __other)) }}; \
                             ::std::result::Result::Ok({name}::{vn} {{\n{field_inits}}}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Json::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Json::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __val) = &__o[0];\n\
                 let _ = __val;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"an enum value for {name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(__v: &::serde::Json) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
