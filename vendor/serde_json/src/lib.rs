//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses real JSON text against the vendored `serde` crate's
//! [`Json`] value tree. Supports everything the workspace round-trips:
//! objects, arrays, strings (with escapes and `\uXXXX`, including surrogate
//! pairs), integers, floats (shortest round-trip formatting), booleans, and
//! null.

use serde::{Deserialize, Json, Serialize};
use std::fmt;

pub use serde::Json as Value;

/// Error raised by serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to a [`Json`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Json, Error> {
    Ok(value.to_json())
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        chars: s.chars().collect(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_json(&v).map_err(|e| Error::new(e.to_string()))
}

/// Lift a [`Json`] tree into any deserializable value.
pub fn from_value<T: Deserialize>(v: Json) -> Result<T, Error> {
    T::from_json(&v).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- printing

fn write_json(v: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting and
                // always includes a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        let got = self.bump()?;
        if got != c {
            return Err(Error::new(format!(
                "expected `{c}` at offset {}, found `{got}`",
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        for c in kw.chars() {
            self.expect(c)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        match self.peek() {
            Some('n') => {
                self.expect_keyword("null")?;
                Ok(Json::Null)
            }
            Some('t') => {
                self.expect_keyword("true")?;
                Ok(Json::Bool(true))
            }
            Some('f') => {
                self.expect_keyword("false")?;
                Ok(Json::Bool(false))
            }
            Some('"') => self.parse_string().map(Json::Str),
            Some('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        ',' => continue,
                        ']' => break,
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` in array, found `{other}`"
                            )))
                        }
                    }
                }
                Ok(Json::Array(items))
            }
            Some('{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        ',' => continue,
                        '}' => break,
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` in object, found `{other}`"
                            )))
                        }
                    }
                }
                Ok(Json::Object(entries))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{other}` at offset {}",
                self.pos
            ))),
            None => Err(Error::new("unexpected end of JSON input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(s),
                '\\' => match self.bump()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'b' => s.push('\u{08}'),
                    'f' => s.push('\u{0c}'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a trailing \uXXXX.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{other}`")));
                    }
                },
                c => s.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| Error::new(format!("invalid hex digit `{c}`")))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Json::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::Object(vec![
            ("a".into(), Json::Array(vec![Json::Int(1), Json::Null])),
            ("b".into(), Json::Str("x\"\\\n←".into())),
            ("c".into(), Json::Float(2.5)),
            ("d".into(), Json::Bool(false)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Json = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Json = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        // BMP escape plus a surrogate pair (U+1F600).
        let back: Json = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, Json::Str("A\u{1F600}".into()));
        // Raw (unescaped) non-ASCII passes through.
        let back: Json = from_str("\"\u{2190}\"").unwrap();
        assert_eq!(back, Json::Str("\u{2190}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Json>("{\"a\": }").is_err());
        assert!(from_str::<Json>("[1, 2,]").is_err());
        assert!(from_str::<Json>("12 34").is_err());
    }
}
