//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access and an empty registry cache,
//! so the workspace vendors a minimal serialization framework under the same
//! crate name. It is value-based rather than visitor-based: `Serialize`
//! lowers to a [`Json`] tree and `Deserialize` lifts back out of one. The
//! derive macros (`serde_derive`) emit externally-tagged representations
//! compatible with what the real serde would produce for the subset of
//! shapes this workspace uses (`#[serde(skip)]`, `#[serde(default)]`,
//! structs, tuple structs, and unit/tuple/struct enum variants).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value — the interchange tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Object entries in insertion order (printed verbatim).
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Find a key among object entries (used by derived `Deserialize` impls).
pub fn json_get<'a>(entries: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn expected(what: &str, got: &Json) -> DeError {
        let kind = match got {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Int(_) | Json::UInt(_) => "an integer",
            Json::Float(_) => "a float",
            Json::Str(_) => "a string",
            Json::Array(_) => "an array",
            Json::Object(_) => "an object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into a [`Json`] tree.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// Lift a value back out of a [`Json`] tree.
pub trait Deserialize: Sized {
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a boolean", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a one-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(t) => t.to_json(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("an array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("an object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("an object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("a tuple array", v))?;
                let expected = [$( stringify!($idx) ),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected a {expected}-tuple, found array of {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_json(&arr[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
