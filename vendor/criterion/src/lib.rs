//! Offline vendored stand-in for `criterion` 0.5.
//!
//! Implements the API surface this workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — over plain `std::time::Instant` wall-clock timing. Statistics
//! are deliberately simple (median of timed samples after warm-up); results
//! print as `name: time per iter [throughput]` lines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, 20, None, f);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Nanoseconds per iteration measured for this benchmark, if any.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations and estimate per-iter cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(5) {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        // Aim for ~5ms per timed sample, at least one iteration each.
        let iters_per_sample = ((5_000_000.0 / est_ns) as u64).clamp(1, 10_000_000);
        let samples = 7usize;
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            timings.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.ns_per_iter = Some(timings[timings.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    _sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { ns_per_iter: None };
    f(&mut bencher);
    match bencher.ns_per_iter {
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  [{:.0} elem/s]", n as f64 * 1e9 / ns)
                }
                Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
                    format!("  [{:.0} B/s]", n as f64 * 1e9 / ns)
                }
                None => String::new(),
            };
            println!("{name:<50} {}{rate}", format_ns(ns));
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| (0..100).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("f", 2), &5u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
