//! Offline vendored stand-in for `rand` 0.8.
//!
//! Provides the slice of the API this workspace uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_bool, gen_range}` over
//! integer `Range`/`RangeInclusive` bounds. The generator is splitmix64 —
//! statistically fine for synthetic clinical data, and fully deterministic
//! for a given seed (though the stream differs from upstream rand's).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 bits of mantissa → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled — mirrors `rand::distributions::uniform::SampleRange`.
/// Implemented as blanket impls over [`SampleUniform`] so type inference can
/// flow from the usage context to the range's element type, as with upstream
/// rand (e.g. `i64_value + rng.gen_range(0..365)` infers an `i64` range).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let width = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        Self::sample_exclusive(rng, start, end)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(0..365);
            assert!((0..365).contains(&x));
            assert_eq!(x, b.gen_range(0..365));
            let y = a.gen_range(1..=12);
            assert!((1..=12).contains(&y));
            b.gen_range(1..=12);
            assert_eq!(a.gen_bool(0.5), b.gen_bool(0.5));
        }
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }
}
